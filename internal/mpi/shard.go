package mpi

// Sharded execution: conservative parallel discrete-event simulation
// (PDES) of one job across several event loops.
//
// Ranks are partitioned into contiguous torus-node slabs
// (topology.ShardOfNode), one sim.Kernel per shard, all synchronized
// by a time-windowed barrier: the coordinator computes the global
// minimum pending event time T and lets every shard run freely through
// the window [T, T+L), where the lookahead L is the minimum latency of
// any cross-shard message (one torus hop — the slab partition
// guarantees ranks of different shards are at least one hop apart).
// Inside the window no shard can affect another, so the windows run on
// concurrent goroutines; at the barrier the coordinator delivers
// cross-shard messages (timestamped mail), drains collective-gate
// entries into the serial gate machinery, and processes due node
// faults.
//
// Determinism. Every shard kernel runs keyed (sim.Kernel.Keyed):
// same-timestamp events fire in canonical (creator rank, per-creator
// stamp) order instead of creation order. A creator's stamp sequence
// depends only on that rank's own execution, never on which shard its
// peers landed on, so the canonical order — and with it every
// order-sensitive model interaction, such as same-node shared-memory
// channel queuing — is identical at every shard count. Mail carries
// the key its delivery would have had if scheduled locally, so a
// message sorts identically whether its endpoints share a shard or
// not. Observable results — elapsed times, event counts, traffic
// stats, traces, probe streams — are therefore byte-identical at any
// shard count and any worker parallelism, and match the serial kernel
// whenever no two same-timestamp events contend for shared state
// (creation order and canonical order only differ on such ties).
//
// Collectives spanning shards gate on the window boundary: a rank
// entering a collective caps its shard's window just past the entry
// (same-timestamp local work still fires) and the shard sits out
// subsequent windows until the coordinator completes the gate. When
// every shard is capped, the coordinator falls back to firing the
// globally earliest event (StepOne) — a correct-but-serial path that
// keeps skewed workloads progressing.

import (
	"fmt"
	"sort"
	"sync"

	"bgpsim/internal/fault"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// xmail is one cross-shard message: a callback to schedule on the
// destination shard's kernel at time t. Mail is collected in per-shard
// outboxes during a window and inserted at the barrier under the
// creator's canonical key (src, stamp) — the key the event would have
// carried had it been scheduled locally, so the destination's keyed
// heap fires it at the same same-timestamp position at any shard
// count. aux marks bookkeeping events with no serial counterpart
// (rendezvous sender completions); they are excluded from the event
// count.
type xmail struct {
	t     sim.Time
	src   int
	stamp uint64
	dst   *shard
	fn    func()
	aux   bool
}

// shardGateEntry is one rank's arrival at a collective gate, logged on
// its shard during a window and replayed into the serial gate
// machinery at the barrier.
type shardGateEntry struct {
	c   *Comm
	key string
	r   *Rank
	t   sim.Time
	val interface{}
	fin finisher
}

// shard is one domain of a sharded run: a slab of torus nodes, their
// ranks, a private kernel, a private network clone (shared read-only
// machine/topology, private stats), and per-shard observation buffers.
type shard struct {
	w   *World
	id  int
	k   *sim.Kernel
	net *network.Net
	pb  *obs.ShardLog // nil when the run has no probe
	tb  *trace.Buffer // nil when the run has no trace

	ranks []*Rank

	outbox []xmail

	entries []shardGateEntry

	// blockedGates counts this shard's ranks blocked in collective
	// gates the coordinator has not yet completed. While positive the
	// shard sits out windows: its remaining ranks must not advance past
	// the gate's (still unknown) release time.
	blockedGates int

	err error // RunWindow/StepOne error (abort, event limit)
}

// mail queues a cross-shard delivery in this shard's outbox. The stamp
// must come from the creating rank's counter (Proc.NextStamp), drawn
// at the point the serial kernel would have scheduled the event.
func (s *shard) mail(t sim.Time, src int, stamp uint64, dst *shard, fn func(), aux bool) {
	s.outbox = append(s.outbox, xmail{t: t, src: src, stamp: stamp, dst: dst, fn: fn, aux: aux})
}

// shardMailLocalOrder discards the canonical keys of barrier mail and
// inserts it in destination-kernel creation order instead — the merge
// bug the determinism tests must be able to catch: a mailed delivery
// then fires after same-timestamp local events it canonically precedes,
// so shard counts that route the message differently diverge. It exists
// only for the mutation guard in the tests; flipping it must make the
// sharded determinism comparison fail.
var shardMailLocalOrder = false

// syncShard is sync's sharded path: log the gate entry for the
// coordinator, cap the shard's window just past the entry time
// (same-timestamp local entries still fire, so synchronized workloads
// keep their parallelism), and block until the coordinator completes
// the gate at a barrier.
func (c *Comm) syncShard(r *Rank, key string, val interface{}, fin finisher) interface{} {
	sh := r.sh
	sh.entries = append(sh.entries, shardGateEntry{c: c, key: key, r: r, t: r.proc.Now(), val: val, fin: fin})
	sh.blockedGates++
	sh.k.LimitWindow(r.proc.Now().Add(1))
	r.proc.BlockWith("collective ", key)
	if r.gateDropped {
		r.gateDropped = false
		r.gateResult = nil
		killRank()
	}
	res := r.gateResult
	r.gateResult = nil
	return res
}

// runSharded executes the program across nshards event loops. The
// coordinator loop alternates concurrent shard windows with serial
// barriers (mail delivery, gate completion, fault processing) and
// assembles a Result byte-identical to the serial path's.
func (w *World) runSharded(program func(*Rank), nshards int) (*Result, error) {
	w.sharded = true
	w.userProbe = w.probe
	if w.probe != nil {
		// Coordinator-side probe calls (fault processing, recovery
		// charges) buffer into their own log, merged with the shard logs
		// after the run. Link-fault schedules are reported directly: the
		// serial path emits them at run start, before any timestamped
		// event, and a time-sorted merge would displace them.
		w.coordLog = obs.NewShardLog()
		w.probe = w.coordLog
	}
	defer func() {
		w.sharded = false
		w.probe = w.userProbe
	}()

	shards := make([]*shard, nshards)
	for i := range shards {
		sh := &shard{w: w, id: i, k: sim.NewKernel(), net: w.net.ShardClone()}
		sh.k.Keyed()
		if w.userProbe != nil {
			sh.pb = obs.NewShardLog()
			sh.k.Probe = sh.pb
		}
		if w.cfg.Trace != nil {
			sh.tb = trace.NewBuffer(w.cfg.Trace.Max())
		}
		shards[i] = sh
	}
	w.shards = shards
	for _, r := range w.ranks {
		sh := shards[topology.ShardOfNode(r.place.Node, w.cfg.Nodes, nshards)]
		r.sh, r.k, r.net, r.tb = sh, sh.k, sh.net, sh.tb
		if sh.pb != nil {
			r.pb = sh.pb
		} else {
			r.pb = nil
		}
		sh.ranks = append(sh.ranks, r)
	}

	// Node faults are processed by the coordinator between windows (the
	// serial path schedules them as kernel events). Sorted by time,
	// stable so same-time faults keep plan order, exactly like the
	// serial kernel's FIFO tie-break on events scheduled at setup.
	var pend []fault.NodeFault
	if w.cfg.Faults != nil {
		pend = append(pend, w.cfg.Faults.NodeFaults()...)
		sort.SliceStable(pend, func(i, j int) bool { return pend[i].At < pend[j].At })
		if w.userProbe != nil {
			reportLinkFaults(w.userProbe, w.cfg.Faults)
		}
	}

	finish := make([]sim.Duration, len(w.ranks))
	for _, r := range w.ranks {
		w.spawnRank(r.k, r, program, finish)
	}

	L := w.net.Lookahead()
	var runErr error

loop:
	for {
		T, ok := w.minShardTime()
		// Process node faults due at or before the next event — the
		// serial kernel fires a fault event before any same-time rank
		// event (the fault was scheduled first). With no events pending,
		// all remaining faults fire, as they would on the serial kernel.
		for len(pend) > 0 && (!ok || pend[0].At <= T) {
			nf := pend[0]
			pend = pend[1:]
			if err := w.coordFault(nf); err != nil {
				runErr = err
				break loop
			}
			T, ok = w.minShardTime()
		}
		if !ok {
			break
		}
		H := T.Add(L)
		if len(pend) > 0 && pend[0].At < H {
			// Never open a window across a fault time: the fault must be
			// applied before any event beyond it fires.
			H = pend[0].At
		}
		fired := w.runWindows(H)
		if err := w.shardErr(); err != nil {
			runErr = err
			break
		}
		mailed := w.drainMail()
		if err := w.drainEntries(); err != nil {
			runErr = err
			break
		}
		if err := w.checkEventLimit(); err != nil {
			runErr = err
			break
		}
		if !fired && !mailed {
			// Every shard with pending events is gate-capped. Fire the
			// globally earliest event: its time is the minimum pending
			// head, every shard clock sits within one lookahead of that
			// (barrier invariant), so anything it schedules — local or
			// mail — lands at or after every clock.
			stepped, err := w.stallStep()
			if err != nil {
				runErr = err
				break
			}
			if stepped {
				w.drainMail()
				if err := w.drainEntries(); err != nil {
					runErr = err
					break
				}
				if err := w.checkEventLimit(); err != nil {
					runErr = err
					break
				}
			}
		}
	}
	// Merge per-shard observability into the user's buffers on every
	// exit: the serial kernel writes trace and probe streams live, so
	// they are populated even when the run ends in an error.
	if w.cfg.Trace != nil {
		bufs := make([]*trace.Buffer, len(w.shards))
		for i, sh := range w.shards {
			bufs[i] = sh.tb
		}
		trace.Merge(w.cfg.Trace, bufs)
	}
	if w.userProbe != nil {
		logs := make([]*obs.ShardLog, len(w.shards))
		for i, sh := range w.shards {
			logs[i] = sh.pb
		}
		obs.MergeShardLogs(w.userProbe, w.coordLog, logs)
	}

	if runErr != nil {
		return nil, runErr
	}

	totalLive := 0
	for _, sh := range w.shards {
		totalLive += sh.k.Live()
	}
	if totalLive > 0 {
		return nil, w.annotateDeadlock(w.mergedDeadlock())
	}

	res := w.buildResult(finish)
	res.Probe = w.userProbe
	res.Shards = nshards
	stats := w.net.Stats()
	for _, sh := range w.shards {
		stats.Add(sh.net.Stats())
	}
	res.Net = stats
	events := w.coordEvents
	for _, sh := range w.shards {
		events += sh.k.CountedEvents()
	}
	res.Events = events
	if w.cfg.Trace != nil {
		res.Dropped = w.cfg.Trace.Dropped()
	}
	return res, nil
}

// minShardTime returns the earliest pending event time across all
// shard kernels — including gate-capped shards, whose pending events
// still bound how far any window may reach.
func (w *World) minShardTime() (sim.Time, bool) {
	var min sim.Time
	ok := false
	for _, sh := range w.shards {
		if t, has := sh.k.PeekTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// runWindows runs every un-capped shard's window up to limit —
// concurrently when more than one shard can run — and reports whether
// any event fired.
func (w *World) runWindows(limit sim.Time) bool {
	var before, after uint64
	var single *shard
	n := 0
	for _, sh := range w.shards {
		before += sh.k.Events()
		if sh.blockedGates == 0 && !sh.k.Drained() {
			single = sh
			n++
		}
	}
	switch {
	case n == 0:
	case n == 1:
		// One runnable shard: skip the goroutine round trip.
		single.err = single.k.RunWindow(limit)
	default:
		var wg sync.WaitGroup
		for _, sh := range w.shards {
			if sh.blockedGates > 0 || sh.k.Drained() {
				continue
			}
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.err = sh.k.RunWindow(limit)
			}(sh)
		}
		wg.Wait()
	}
	for _, sh := range w.shards {
		after += sh.k.Events()
	}
	return after != before
}

// shardErr picks the error to surface when shard windows failed:
// deterministically the one whose kernel clock is earliest (ties to
// the lowest shard id), the error a serial run would have hit first.
func (w *World) shardErr() error {
	var best *shard
	for _, sh := range w.shards {
		if sh.err == nil {
			continue
		}
		if best == nil || sh.k.Now() < best.k.Now() ||
			(sh.k.Now() == best.k.Now() && sh.id < best.id) {
			best = sh
		}
	}
	if best == nil {
		return nil
	}
	return best.err
}

// drainMail inserts all queued cross-shard messages into their
// destination kernels under their canonical keys and reports whether
// any were delivered. Insertion order is immaterial — the keyed heaps
// order same-timestamp events by (src, stamp) — so outboxes are walked
// in shard order. Every target time lies at or beyond the window
// bound, hence at or after every shard's clock.
func (w *World) drainMail() bool {
	mailed := false
	for _, sh := range w.shards {
		for _, m := range sh.outbox {
			k := m.dst.k
			fn := m.fn
			if m.aux {
				inner := fn
				fn = func() { inner(); k.Uncount() }
			}
			if shardMailLocalOrder {
				k.At(m.t, fn)
			} else {
				k.AtTagged(m.t, m.src, m.stamp, fn)
			}
			mailed = true
		}
		sh.outbox = sh.outbox[:0]
	}
	return mailed
}

// drainEntries replays this window's collective-gate entries into the
// serial gate machinery in (time, world rank, per-shard order) —
// within one gate every permutation of entries yields the same
// completion (the finishers are entry-order independent), and across
// gates the order reproduces serial completion timing. A gate whose
// last live member arrives completes on the spot, with the
// coordinator's clock at that entry (exactly when the serial kernel
// completes it).
func (w *World) drainEntries() error {
	type tagged struct {
		e   shardGateEntry
		idx int
	}
	var all []tagged
	for _, sh := range w.shards {
		for i := range sh.entries {
			all = append(all, tagged{sh.entries[i], i})
		}
		sh.entries = sh.entries[:0]
	}
	if len(all) == 0 {
		return nil
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i].e, all[j].e
		if a.t != b.t {
			return a.t < b.t
		}
		if a.r.id != b.r.id {
			return a.r.id < b.r.id
		}
		return all[i].idx < all[j].idx
	})
	for _, te := range all {
		e := te.e
		w.vnow = e.t
		g, ok := w.gates[e.key]
		if !ok {
			g = &gate{c: e.c, fin: e.fin, need: e.c.liveSize(), indices: make(map[int]int)}
			w.gates[e.key] = g
		}
		if _, dup := g.indices[e.r.id]; dup {
			return fmt.Errorf("mpi: rank %d entered collective %q twice", e.r.id, e.key)
		}
		g.indices[e.r.id] = len(g.ranks)
		g.ranks = append(g.ranks, e.r)
		g.times = append(g.times, e.t)
		g.vals = append(g.vals, e.val)
		if len(g.ranks) == g.need {
			w.completeGate(e.key, g)
		}
	}
	return nil
}

// coordFault applies one node fault, mirroring scheduleNodeFaults'
// kernel events: under recovery every fault fires one failNode event;
// fail-stop faults fire only when the node hosts a rank, and abort
// with *RankFailure only while the program still runs.
func (w *World) coordFault(nf fault.NodeFault) error {
	w.vnow = nf.At
	if w.cfg.Faults.Recover() {
		w.coordEvents++
		w.failNode(nf)
		w.refreshLiveComms()
		return nil
	}
	victim := -1
	for _, r := range w.ranks {
		if r.place.Node == nf.Node {
			victim = r.id
			break
		}
	}
	if victim < 0 {
		return nil // the serial path schedules no event either
	}
	w.coordEvents++
	if w.totalLive() > 0 {
		if w.probe != nil {
			w.probe.Fault(nf.At, "node-kill",
				fmt.Sprintf("node %d died, rank %d lost", nf.Node, victim))
		}
		return &RankFailure{Rank: victim, Node: nf.Node, At: nf.At}
	}
	return nil
}

// refreshLiveComms rewarms every registered communicator's live-member
// cache after a failure, while the coordinator has sole control — the
// shards' subsequent concurrent reads then never write the cache.
// liveComm may register derived communicators during the walk; the
// indexed loop picks them up.
func (w *World) refreshLiveComms() {
	if w.epoch == 0 {
		return
	}
	for i := 0; i < len(w.allComms); i++ {
		w.allComms[i].liveComm()
	}
}

// totalLive returns the number of unfinished rank processes across all
// shards.
func (w *World) totalLive() int {
	live := 0
	for _, sh := range w.shards {
		live += sh.k.Live()
	}
	return live
}

// checkEventLimit enforces Config.EventLimit globally: the shard
// kernels run uncapped and the coordinator sums their counted events
// (plus its own fault events) at each barrier. The reported time is
// the latest shard clock; it can differ from the serial message's time
// because the serial kernel stops mid-window.
func (w *World) checkEventLimit() error {
	if w.cfg.EventLimit == 0 {
		return nil
	}
	total := w.coordEvents
	for _, sh := range w.shards {
		total += sh.k.CountedEvents()
	}
	if total > w.cfg.EventLimit {
		var max sim.Time
		for _, sh := range w.shards {
			if sh.k.Now() > max {
				max = sh.k.Now()
			}
		}
		return fmt.Errorf("sim: event limit %d exceeded at %v", w.cfg.EventLimit, max)
	}
	return nil
}

// stallStep fires the single globally earliest pending event (ties by
// canonical key, so the choice matches what a single keyed kernel
// holding every event would fire next). Used when every shard holding
// events is gate-capped: stepping strictly in global order keeps every
// insertion causal while collective entries trickle in.
func (w *World) stallStep() (bool, error) {
	var best *shard
	var bt sim.Time
	var bk uint64
	for _, sh := range w.shards {
		if t, key, ok := sh.k.PeekKey(); ok &&
			(best == nil || t < bt || (t == bt && key < bk)) {
			best, bt, bk = sh, t, key
		}
	}
	if best == nil {
		return false, nil
	}
	return best.k.StepOne()
}

// mergedDeadlock builds the DeadlockError of a sharded run: the latest
// shard clock (the serial kernel's last-event time) and every blocked
// process, in the serial error's (name, since) order.
func (w *World) mergedDeadlock() error {
	var max sim.Time
	var blocked []sim.BlockedProc
	for _, sh := range w.shards {
		if sh.k.Now() > max {
			max = sh.k.Now()
		}
		blocked = append(blocked, sh.k.BlockedProcs()...)
	}
	sort.Slice(blocked, func(i, j int) bool {
		if blocked[i].Name != blocked[j].Name {
			return blocked[i].Name < blocked[j].Name
		}
		return blocked[i].Since < blocked[j].Since
	})
	return &sim.DeadlockError{Time: max, Blocked: blocked}
}
