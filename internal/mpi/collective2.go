package mpi

import "fmt"

// Scatter distributes bytesPerRank from communicator rank root to
// every member (stock table: a binomial tree; subtree chunks travel
// together).
func (c *Comm) Scatter(r *Rank, root, bytesPerRank int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: scatter root %d out of range", root))
	}
	c.runColl(r, opScatter, CollArgs{Root: root, Bytes: bytesPerRank})
}

// Scan computes an inclusive prefix reduction over the communicator
// (MPI_Scan). The stock table uses the standard log-round algorithm.
func (c *Comm) Scan(r *Rank, bytes int) {
	c.runColl(r, opScan, CollArgs{Bytes: bytes})
}

// ReduceScatter reduces a vector of Size()*bytesPerRank across the
// communicator and leaves each member with its bytesPerRank slice
// (stock table: recursive halving on the power-of-two subgroup).
func (c *Comm) ReduceScatter(r *Rank, bytesPerRank int) {
	c.runColl(r, opReduceScatter, CollArgs{Bytes: bytesPerRank})
}

func init() {
	registerCollAlgo(&CollAlgo{Op: "scatter", Name: "binomial", Run: scatterBinomial})
	registerCollAlgo(&CollAlgo{Op: "scan", Name: "logstep", Run: scanLogStep})
	registerCollAlgo(&CollAlgo{Op: "reducescatter", Name: "rechalving", Run: reduceScatterRecHalving})
}

// scatterBinomial distributes per-rank chunks down a binomial tree,
// with subtree chunks travelling together.
func scatterBinomial(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - a.Root + p) % p
	// Receive the subtree chunk from the parent.
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := c.Member((rel - mask + a.Root) % p)
			r.recvColl(src, key)
			break
		}
		mask <<= 1
	}
	// Forward sub-chunks to children (half the remaining data each).
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < p {
			sub := mask
			if rel+2*mask > p {
				sub = p - rel - mask
			}
			dst := c.Member((rel + mask + a.Root) % p)
			r.sendColl(dst, sub*a.Bytes, key)
		}
	}
}

// scanLogStep is the standard log-round prefix algorithm: in round k,
// rank i sends its partial result to rank i+2^k and incorporates the
// value from rank i-2^k.
func scanLogStep(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	for k, dist := 0, 1; dist < p; k, dist = k+1, dist*2 {
		rkey := roundKey(key, ".r", k)
		var sreq *Request
		if me+dist < p {
			sreq = r.isendPayload(c.Member(me+dist), a.Bytes, 0, rkey, nil)
		}
		if me-dist >= 0 {
			r.recvColl(c.Member(me-dist), rkey)
			r.reduceFlops(a.Bytes)
		}
		if sreq != nil {
			r.waitNoOverhead(sreq)
		}
	}
}

// reduceScatterRecHalving: fold to a power of two, then recursive
// halving, leaving each member its slice.
func reduceScatterRecHalving(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	pof2 := pow2Floor(p)
	rem := p - pof2
	total := a.Bytes * p

	if me < 2*rem {
		if me%2 == 0 {
			r.sendColl(c.Member(me+1), total, key+".fold")
		} else {
			r.recvColl(c.Member(me-1), key+".fold")
			r.reduceFlops(total)
		}
	}
	nr := foldIn(me, p, pof2)
	if nr >= 0 {
		chunk := total / 2
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, chunk, partner, roundKey(key, ".r", k))
			r.reduceFlops(chunk)
			if chunk > 1 {
				chunk /= 2
			}
		}
	}
	if me < 2*rem {
		// Folded-out even ranks receive their slice back.
		if me%2 == 0 {
			r.recvColl(c.Member(me+1), key+".unfold")
		} else {
			r.sendColl(c.Member(me-1), a.Bytes, key+".unfold")
		}
	}
}

// Cart is a Cartesian process-grid view of a communicator, in the
// spirit of MPI_Cart_create: it maps communicator ranks to grid
// coordinates (first dimension varies slowest, as in MPI) and answers
// neighbour queries.
type Cart struct {
	c        *Comm
	dims     []int
	periodic bool
}

// NewCart builds a Cartesian view. The product of dims must equal the
// communicator size.
func NewCart(c *Comm, dims []int, periodic bool) (*Cart, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: bad cartesian extent %d", d)
		}
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: cartesian grid %v holds %d ranks, communicator has %d",
			dims, n, c.Size())
	}
	cp := make([]int, len(dims))
	copy(cp, dims)
	return &Cart{c: c, dims: cp, periodic: periodic}, nil
}

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.c }

// Coords returns the grid coordinates of a communicator rank.
func (ct *Cart) Coords(rank int) []int {
	out := make([]int, len(ct.dims))
	for i := len(ct.dims) - 1; i >= 0; i-- {
		out[i] = rank % ct.dims[i]
		rank /= ct.dims[i]
	}
	return out
}

// RankOf returns the communicator rank at the given coordinates,
// wrapping if periodic; out-of-range coordinates on a non-periodic
// grid return -1 (MPI_PROC_NULL).
func (ct *Cart) RankOf(coords []int) int {
	if len(coords) != len(ct.dims) {
		panic(fmt.Sprintf("mpi: coords %v for %d-d grid", coords, len(ct.dims)))
	}
	rank := 0
	for i, c := range coords {
		d := ct.dims[i]
		if c < 0 || c >= d {
			if !ct.periodic {
				return -1
			}
			c = ((c % d) + d) % d
		}
		rank = rank*d + c
	}
	return rank
}

// Shift returns the source and destination communicator ranks for a
// displacement along one dimension (MPI_Cart_shift). Either may be -1
// on a non-periodic grid edge.
func (ct *Cart) Shift(rank, dim, disp int) (src, dst int) {
	coords := ct.Coords(rank)
	up := make([]int, len(coords))
	down := make([]int, len(coords))
	copy(up, coords)
	copy(down, coords)
	up[dim] += disp
	down[dim] -= disp
	return ct.RankOf(down), ct.RankOf(up)
}
