package mpi

import (
	"fmt"

	"bgpsim/internal/sim"
)

// Running is a program in stepwise execution: started with
// World.Begin, advanced to chosen points in virtual time with StepTo,
// and completed with Finish. The event order — and therefore every
// result byte — is identical to World.Run's: StepTo only chooses where
// the event loop pauses, never what it fires. That equivalence
// (run-to-T-then-finish ≡ straight run) is what makes Running the
// snapshot/restore substrate of the bgpsimd server: a long run can be
// parked at time T, inspected, and resumed without changing anything
// it would have computed.
//
// Stepwise execution always uses the serial kernel: the conservative
// sharded coordinator owns its shards' windows and cannot pause at an
// arbitrary outside time. Configs requesting shards run serial here
// (Result.Shards reports 1) — output bytes are identical either way by
// the sharded-kernel determinism contract.
type Running struct {
	w      *World
	finish []sim.Duration
	done   bool
	res    *Result
	err    error
}

// Begin spawns the program's ranks and returns a Running handle
// without firing any event. The world is consumed: it cannot be run
// again.
func (w *World) Begin(program func(*Rank)) (*Running, error) {
	if w.ran {
		return nil, fmt.Errorf("mpi: world already ran")
	}
	w.ran = true
	if w.cfg.Faults != nil {
		w.scheduleNodeFaults(w.cfg.Faults)
		if w.probe != nil {
			reportLinkFaults(w.probe, w.cfg.Faults)
		}
	}
	finish := make([]sim.Duration, len(w.ranks))
	for _, r := range w.ranks {
		w.spawnRank(w.kernel, r, program, finish)
	}
	return &Running{w: w, finish: finish}, nil
}

// Begin builds a world from cfg and starts program on it stepwise.
func Begin(cfg Config, program func(*Rank)) (*Running, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return w.Begin(program)
}

// StepTo fires every pending event with a timestamp strictly below t,
// then pauses with all rank goroutines parked. A run that ends inside
// the window (normally or by error) is finalized exactly as Finish
// would; further StepTo calls are then no-ops and Finish returns the
// stored outcome. Rewinding is impossible: a t at or before Now fires
// nothing.
func (r *Running) StepTo(t sim.Time) error {
	if r.done {
		return r.err
	}
	if err := r.w.kernel.RunWindow(t); err != nil {
		r.seal(nil, r.w.annotateDeadlock(err))
		return r.err
	}
	if r.w.kernel.Drained() {
		// The program finished (or deadlocked) before t: finalize now
		// so the caller's Finish sees the same outcome a straight Run
		// would have produced.
		return r.finalize()
	}
	return nil
}

// Now returns the paused run's current virtual time.
func (r *Running) Now() sim.Time { return r.w.kernel.Now() }

// Events returns the number of simulation events fired so far.
func (r *Running) Events() uint64 { return r.w.kernel.Events() }

// Done reports whether the run has completed (successfully or not).
func (r *Running) Done() bool { return r.done }

// Finish runs the remaining events to completion and returns the
// result — byte-for-byte the result World.Run would have returned,
// however many StepTo pauses preceded it.
func (r *Running) Finish() (*Result, error) {
	if !r.done {
		r.finalize()
	}
	return r.res, r.err
}

// finalize runs the kernel to completion (a single Run call — the
// kernel refuses a second; when StepTo already drained the queue, Run
// just performs the live-process deadlock check and marks the kernel
// stopped, exactly as the straight path does) and builds the result
// with the serial Run path's bookkeeping: stats, events, shard count,
// dropped trace events.
func (r *Running) finalize() error {
	if err := r.w.kernel.Run(); err != nil {
		r.seal(nil, r.w.annotateDeadlock(err))
		return r.err
	}
	res := r.w.buildResult(r.finish)
	res.Net = r.w.net.Stats()
	res.Events = r.w.kernel.Events()
	res.Shards = 1
	if r.w.cfg.Trace != nil {
		res.Dropped = r.w.cfg.Trace.Dropped()
	}
	r.seal(res, nil)
	return nil
}

// seal records the run's final outcome.
func (r *Running) seal(res *Result, err error) {
	r.done = true
	r.res = res
	r.err = err
}
