package mpi

import (
	"strings"
	"testing"
)

// FuzzParseCollSpec checks that the collective-override parser never
// panics, that accepted specs round-trip (every entry names a known op
// and registered algorithm, and re-serializing and re-parsing yields
// the same map), and that parsing is deterministic.
func FuzzParseCollSpec(f *testing.F) {
	f.Add("")
	f.Add("allreduce=ring")
	f.Add("allreduce=ring,bcast=binomial")
	f.Add("barrier=dissemination, alltoall=pairwise")
	f.Add("allreduce=")
	f.Add("=ring")
	f.Add("allreduce=nope")
	f.Add("bogus=ring")
	f.Add(",,,")
	f.Add("allreduce=ring,allreduce=recursive-doubling")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseCollSpec(s)
		m2, err2 := ParseCollSpec(s)
		if (err == nil) != (err2 == nil) || len(m) != len(m2) {
			t.Fatalf("nondeterministic parse of %q: (%v, %v) vs (%v, %v)", s, m, err, m2, err2)
		}
		if err != nil {
			if m != nil {
				t.Errorf("ParseCollSpec(%q) returned both a map and an error", s)
			}
			return
		}
		if m == nil {
			if strings.TrimSpace(s) != "" {
				t.Errorf("ParseCollSpec(%q) = nil map with nil error for non-empty spec", s)
			}
			return
		}
		// Round-trip: re-serialize and re-parse; entries must survive.
		parts := make([]string, 0, len(m))
		for op, name := range m {
			if _, ok := opIndex(op); !ok {
				t.Fatalf("accepted unknown op %q in %q", op, s)
			}
			if collRegistry[algoKey{op, name}] == nil {
				t.Fatalf("accepted unknown algorithm %q for %q in %q", name, op, s)
			}
			parts = append(parts, op+"="+name)
		}
		rt, err := ParseCollSpec(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("round-trip of %q failed: %v", s, err)
		}
		if len(rt) != len(m) {
			t.Fatalf("round-trip of %q: %v vs %v", s, rt, m)
		}
		for op, name := range m {
			if rt[op] != name {
				t.Errorf("round-trip of %q: %s=%s became %s", s, op, name, rt[op])
			}
		}
	})
}
