package mpi

// Mutation-style guard: the determinism harness is only worth trusting
// if it actually catches merge-order bugs. This test flips
// shardMailLocalOrder — delivering inter-shard mail in destination-
// kernel creation order instead of by canonical key — and asserts the
// byte-identity comparison between shard counts FAILS. If this test
// ever passes with the mutation active, the determinism tests have
// gone blind and pinning them is theater.

import (
	"testing"

	"bgpsim/internal/machine"
)

// mutationProg is a ring exchange under one-picosecond hop latency:
// windows are as narrow as possible and nearly every cross-shard
// delivery shares its timestamp with local events, so a merge-order
// bug cannot hide.
func mutationCfgProg() (Config, func(*Rank)) {
	m := *machine.Get(machine.BGP)
	m.TorusHopLat = 1e-12
	cfg := analyticConfig(16, machine.SMP)
	cfg.Machine = &m
	return cfg, func(r *Rank) {
		n := r.Size()
		for it := 0; it < 4; it++ {
			right := (r.ID() + 1) % n
			left := (r.ID() + n - 1) % n
			r.Sendrecv(right, 2048, 1, left, 1)
		}
		r.World().Barrier(r)
	}
}

func TestShardMutationGuardCaught(t *testing.T) {
	cfg, prog := mutationCfgProg()

	// Sanity: with the real merge rule the counts agree byte for byte.
	want := takeSnapshot(t, cfg, 1, prog)
	if want.err != "" {
		t.Fatalf("baseline: %v", want.err)
	}
	checkEquivSharded(t, cfg, prog, want, 4)
	if t.Failed() {
		t.Fatal("canonical merge already diverges; mutation guard is meaningless")
	}

	// Mutate: deliver mail in creation order. shards=1 routes nothing
	// through the mailbox and stays canonical; shards=4 must now
	// diverge from it somewhere the snapshot can see.
	shardMailLocalOrder = true
	defer func() { shardMailLocalOrder = false }()

	mut := takeSnapshot(t, cfg, 4, prog)
	if mut.err != "" {
		t.Fatalf("mutated run failed outright: %v", mut.err)
	}
	if snapshotsEqual(want, mut) {
		t.Error("mail merged in creation order, yet shards=4 still matches shards=1 byte for byte: the determinism tests cannot catch merge-order bugs")
	}
}

// snapshotsEqual reports full byte-identity of two run snapshots.
func snapshotsEqual(a, b snapshot) bool {
	if a.err != b.err || a.result != b.result || a.net != b.net ||
		a.ranks != b.ranks || a.timers != b.timers {
		return false
	}
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.trace, b.trace) && eq(a.probe, b.probe)
}
