package mpi

import (
	"reflect"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// buildRandomScript generates a deterministic random communication
// script that is deadlock-free by construction: a sequence of global
// phases, each either a collective or a permutation exchange where
// every rank sends to its image under a random permutation and
// receives from its preimage.
type phase struct {
	kind    int   // 0 sendrecv-perm, 1 allreduce, 2 bcast, 3 alltoall, 4 barrier, 5 allgather
	perm    []int // for kind 0
	inverse []int
	bytes   int
}

func buildRandomScript(seed uint64, ranks, phases int) []phase {
	rng := sim.NewRNG(seed)
	out := make([]phase, phases)
	for i := range out {
		p := phase{kind: rng.Intn(6), bytes: 1 << uint(rng.Intn(16))}
		if p.kind == 0 {
			perm := make([]int, ranks)
			for j := range perm {
				perm[j] = j
			}
			for j := ranks - 1; j > 0; j-- {
				k := rng.Intn(j + 1)
				perm[j], perm[k] = perm[k], perm[j]
			}
			inv := make([]int, ranks)
			for j, v := range perm {
				inv[v] = j
			}
			p.perm, p.inverse = perm, inv
		}
		out[i] = p
	}
	return out
}

func runScript(t *testing.T, cfg Config, script []phase) *Result {
	t.Helper()
	res, err := Execute(cfg, func(r *Rank) {
		me := r.ID()
		for i, p := range script {
			switch p.kind {
			case 0:
				if p.perm[me] == me {
					continue
				}
				r.Sendrecv(p.perm[me], p.bytes, i, p.inverse[me], i)
			case 1:
				r.World().Allreduce(r, p.bytes, i%2 == 0)
			case 2:
				r.World().Bcast(r, i%r.Size(), p.bytes)
			case 3:
				r.World().Alltoall(r, p.bytes/r.Size()+1)
			case 4:
				r.World().Barrier(r)
			case 5:
				r.World().Allgather(r, p.bytes/r.Size()+1)
			}
		}
	})
	if err != nil {
		t.Fatalf("script run failed: %v", err)
	}
	return res
}

func TestRandomScriptsComplete(t *testing.T) {
	// Many random workloads across machines, modes and fidelities:
	// all must terminate without deadlock.
	for seed := uint64(0); seed < 6; seed++ {
		for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
			cfg := Config{Machine: machine.Get(id), Nodes: 16, Mode: machine.VN,
				Fidelity: network.Contention}
			script := buildRandomScript(seed, 64, 12)
			res := runScript(t, cfg, script)
			if res.Elapsed <= 0 {
				t.Errorf("seed %d on %s: no time", seed, id)
			}
		}
	}
}

func TestRandomScriptsDeterministic(t *testing.T) {
	for seed := uint64(10); seed < 13; seed++ {
		script := buildRandomScript(seed, 32, 10)
		mk := func() Config {
			return Config{Machine: machine.Get(machine.BGP), Nodes: 8, Mode: machine.VN,
				Fidelity: network.Contention}
		}
		a := runScript(t, mk(), script)
		b := runScript(t, mk(), script)
		if a.Elapsed != b.Elapsed || a.Events != b.Events || !reflect.DeepEqual(a.Net, b.Net) {
			t.Errorf("seed %d: runs differ: %+v vs %+v", seed, a, b)
		}
	}
}

func TestRandomScriptsMessageConservation(t *testing.T) {
	// In a permutation-exchange-only script, the network must carry
	// exactly ranks messages per phase (minus self-pairs), all matched.
	ranks := 32
	var script []phase
	for _, p := range buildRandomScript(77, ranks, 40) {
		if p.kind == 0 { // keep only the permutation exchanges
			script = append(script, p)
		}
	}
	if len(script) < 3 {
		t.Fatal("seed produced too few permutation phases")
	}
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN,
		Fidelity: network.Contention}
	res := runScript(t, cfg, script)
	want := int64(0)
	for _, p := range script {
		for j, v := range p.perm {
			if v != j {
				want++
			}
		}
	}
	if res.Net.Messages != want {
		t.Errorf("messages = %d, want %d", res.Net.Messages, want)
	}
}

func TestRandomScriptsAcrossFidelities(t *testing.T) {
	// The same script completes under every network model and the
	// elapsed times agree within a factor of two.
	script := buildRandomScript(5, 32, 8)
	var times []sim.Duration
	for _, fid := range []network.Fidelity{network.Analytic, network.Contention, network.Packet} {
		cfg := Config{Machine: machine.Get(machine.BGP), Nodes: 8, Mode: machine.VN, Fidelity: fid}
		times = append(times, runScript(t, cfg, script).Elapsed)
	}
	for i := 1; i < len(times); i++ {
		ratio := times[i].Seconds() / times[0].Seconds()
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("fidelity %d: elapsed %v vs analytic %v", i, times[i], times[0])
		}
	}
}
