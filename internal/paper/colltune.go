package paper

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/stats"
)

func init() {
	register("colltune", "Supplementary: collective-algorithm tuning sweep (winners vs. selection-table defaults)", colltune)
}

// colltuneIters is the timed repetitions per (machine, op, algorithm,
// size) point; the metric is the per-iteration mean of the slowest
// rank's timer.
const colltuneIters = 4

// colltunePoint is one measured algorithm at one sweep point.
type colltunePoint struct {
	algo string
	us   float64
}

// colltuneCase is one (machine, collective, size) sweep point with
// every eligible algorithm measured.
type colltuneCase struct {
	mach  machine.ID
	op    string
	bytes int
	pick  string // the selection table's default choice
	algos []colltunePoint
}

// winner returns the fastest measured algorithm (first in sorted name
// order on ties, so the result is deterministic).
func (c *colltuneCase) winner() *colltunePoint {
	best := &c.algos[0]
	for i := range c.algos[1:] {
		if c.algos[i+1].us < best.us {
			best = &c.algos[i+1]
		}
	}
	return best
}

// pickUS returns the measured time of the table default.
func (c *colltuneCase) pickUS() float64 {
	for i := range c.algos {
		if c.algos[i].algo == c.pick {
			return c.algos[i].us
		}
	}
	return 0
}

// colltuneOps are the swept collectives (barrier only at size zero).
var colltuneOps = []string{"barrier", "bcast", "allreduce", "allgather", "alltoall", "reducescatter"}

// colltuneSweep measures every registered, eligible algorithm for each
// swept collective on a BG/P and an XT4/QC partition, one independent
// simulation per (machine, op, algorithm, size) with the algorithm
// forced via the Config.Coll override. Results are committed in fixed
// order, so tables are identical at any worker count.
func colltuneSweep(o Options) (int, []*colltuneCase, error) {
	ranks := 32
	sizes := []int{16, 512, 8192, 131072}
	if o.Full {
		ranks = 256
		sizes = append(sizes, 1<<20)
	}
	var cases []*colltuneCase
	for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
		m := machine.Get(id)
		for _, op := range colltuneOps {
			szs := sizes
			if op == "barrier" {
				szs = []int{0}
			}
			for _, b := range szs {
				c := &colltuneCase{mach: id, op: op, bytes: b,
					pick: mpi.SelectCollAlgo(m, op, b, ranks, true, true)}
				for _, name := range mpi.CollAlgos(op) {
					if mpi.AlgoEligible(m, op, name, b, ranks, true, true) {
						c.algos = append(c.algos, colltunePoint{algo: name})
					}
				}
				cases = append(cases, c)
			}
		}
	}
	var jobs []job
	for _, c := range cases {
		for i := range c.algos {
			c, i := c, i
			jobs = append(jobs, job{
				run:    func() (any, error) { return colltuneRun(c.mach, ranks, c.op, c.algos[i].algo, c.bytes) },
				commit: func(v any) { c.algos[i].us = v.(float64) },
			})
		}
	}
	if err := runJobs(jobs); err != nil {
		return 0, nil, err
	}
	return ranks, cases, nil
}

// colltuneRun times one collective with one algorithm forced: a
// warm-up barrier to align the ranks, then colltuneIters back-to-back
// operations under a timer.
func colltuneRun(id machine.ID, ranks int, op, algo string, bytes int) (float64, error) {
	m := machine.Get(id)
	cfg := mpi.Config{Machine: m, Nodes: ranks / m.RanksPerNode(machine.VN),
		Mode: machine.VN, Fidelity: network.Contention,
		Coll: map[string]string{op: algo}}
	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		r.World().Barrier(r)
		r.TimerStart("coll")
		for i := 0; i < colltuneIters; i++ {
			colltuneOp(r, op, bytes)
		}
		r.TimerStop("coll")
	})
	if err != nil {
		return 0, err
	}
	return res.MaxTimer("coll").Microseconds() / colltuneIters, nil
}

// colltuneOp issues one collective of the given natural size.
func colltuneOp(r *mpi.Rank, op string, bytes int) {
	w := r.World()
	switch op {
	case "barrier":
		w.Barrier(r)
	case "bcast":
		w.Bcast(r, 0, bytes)
	case "allreduce":
		w.Allreduce(r, bytes, true)
	case "allgather":
		w.Allgather(r, bytes)
	case "alltoall":
		w.Alltoall(r, bytes)
	case "reducescatter":
		w.ReduceScatter(r, bytes)
	default:
		panic("colltune: unknown op " + op)
	}
}

// colltune sweeps every registered collective algorithm across message
// sizes on BG/P and XT4/QC and reports, per point, the fastest
// algorithm against the machine's selection-table default — the
// winner table says whether the stock tables (tree offload on
// BlueGene, MPICH-style switch points on both) leave time on the
// table, and the crossover table shows where the best algorithm
// changes with size.
func colltune(o Options) ([]*stats.Table, error) {
	ranks, cases, err := colltuneSweep(o)
	if err != nil {
		return nil, err
	}

	t1 := stats.NewTable(
		fmt.Sprintf("Best collective algorithm vs. selection-table default (%d ranks, VN, %d-iteration mean)", ranks, colltuneIters),
		"Machine", "Collective", "Bytes", "Best algorithm", "us", "Table default", "us", "Best/default")
	for _, c := range cases {
		w := c.winner()
		pus := c.pickUS()
		ratio := 1.0
		if pus > 0 {
			ratio = w.us / pus
		}
		t1.AddRow(string(c.mach), c.op, fmt.Sprintf("%d", c.bytes),
			w.algo, stats.FormatG(w.us),
			c.pick, stats.FormatG(pus), stats.FormatG(ratio))
	}

	t2 := stats.NewTable("Winner crossovers by message size",
		"Machine", "Collective", "Bytes", "Winner")
	var prev *colltuneCase
	var lo int
	flush := func(hi int) {
		if prev == nil {
			return
		}
		rng := fmt.Sprintf("%d", lo)
		if hi != lo {
			rng = fmt.Sprintf("%d-%d", lo, hi)
		}
		t2.AddRow(string(prev.mach), prev.op, rng, prev.winner().algo)
	}
	for _, c := range cases {
		if prev != nil && c.mach == prev.mach && c.op == prev.op &&
			c.winner().algo == prev.winner().algo {
			prev = c // extend the run
			continue
		}
		if prev != nil {
			flush(prev.bytes)
		}
		prev, lo = c, c.bytes
	}
	if prev != nil {
		flush(prev.bytes)
	}
	return []*stats.Table{t1, t2}, nil
}
