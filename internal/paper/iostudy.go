package paper

import (
	"bgpsim/internal/iosys"
	"bgpsim/internal/stats"
)

func init() {
	register("io", "Supplementary: storage-path bandwidth (paper §I.B/§I.C system description)", ioStudy)
}

// ioStudy is not a paper figure; it exercises the storage substrate
// the paper describes (compute nodes -> collective network -> I/O
// nodes -> 10 GbE -> GPFS on the BG/P, direct striping on the XT) and
// shows the structural cause of the "system I/O performance issue"
// the paper mentions encountering during the CAM experiments: small
// partitions funnel output through very few I/O nodes.
func ioStudy(o Options) ([]*stats.Table, error) {
	nodeCounts := []int{64, 256, 1024, 2048}
	if o.Full {
		nodeCounts = []int{64, 256, 1024, 2048, 4096, 8192}
	}
	eugene := iosys.ORNLEugene()
	jaguar := iosys.ORNLJaguar()

	f := stats.NewFigure("Aggregate file-write bandwidth vs partition size",
		"compute nodes", "GB/s")
	se := f.AddSeries("BG/P Eugene (GPFS via I/O nodes)")
	sj := f.AddSeries("XT Jaguar (direct)")
	for _, n := range nodeCounts {
		se.Add(float64(n), eugene.EffectiveBW(n)/1e9)
		sj.Add(float64(n), jaguar.EffectiveBW(n)/1e9)
	}

	t2 := stats.NewTable("Checkpoint write: 1 GB per node, one file per node",
		"compute nodes", "BG/P seconds", "XT seconds")
	for _, n := range nodeCounts {
		be, err := eugene.WriteTime(n, float64(n)*1e9, n)
		if err != nil {
			return nil, err
		}
		bj, err := jaguar.WriteTime(n, float64(n)*1e9, n)
		if err != nil {
			return nil, err
		}
		t2.AddRow(stats.FormatG(float64(n)), stats.FormatG(be), stats.FormatG(bj))
	}
	return []*stats.Table{f.Table(), t2}, nil
}
