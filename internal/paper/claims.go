package paper

import (
	"fmt"

	"bgpsim/internal/apps/cam"
	"bgpsim/internal/apps/gyro"
	"bgpsim/internal/apps/md"
	"bgpsim/internal/apps/pop"
	"bgpsim/internal/apps/s3d"
	"bgpsim/internal/halo"
	"bgpsim/internal/hpcc"
	"bgpsim/internal/imb"
	"bgpsim/internal/machine"
	"bgpsim/internal/power"
	"bgpsim/internal/runner"
	"bgpsim/internal/topology"
)

// Claim is one machine-checkable statement from the paper.
type Claim struct {
	ID   string
	Text string // the paper's claim, paraphrased
	// Check returns pass/fail with a one-line numeric justification.
	Check func(Options) (bool, string, error)
}

// ClaimResult is the outcome of one verification.
type ClaimResult struct {
	Claim  Claim
	Pass   bool
	Detail string
	Err    error
}

// VerifyClaims checks every registered claim at the given scale. The
// claims are independent simulations, so they run concurrently on the
// runner pool; results come back in registration order.
func VerifyClaims(o Options) []ClaimResult {
	out, _ := runner.Sweep(claims, func(c Claim) (ClaimResult, error) {
		pass, detail, err := c.Check(o)
		return ClaimResult{Claim: c, Pass: pass && err == nil, Detail: detail, Err: err}, nil
	})
	return out
}

var claims = []Claim{
	{
		ID:   "net-latency",
		Text: "the BG/P network's strength is low-latency communication whereas the XT's strength is high-bandwidth communication (§II.A.2)",
		Check: func(o Options) (bool, string, error) {
			bgp, err := hpcc.SingleAndEP(machine.BGP, 128)
			if err != nil {
				return false, "", err
			}
			xt, err := hpcc.SingleAndEP(machine.XT4QC, 128)
			if err != nil {
				return false, "", err
			}
			ok := bgp.PingPongLatUS < xt.PingPongLatUS && bgp.PingPongBWGBs < xt.PingPongBWGBs
			return ok, fmt.Sprintf("latency %.2f vs %.2f us; bandwidth %.2f vs %.2f GB/s",
				bgp.PingPongLatUS, xt.PingPongLatUS, bgp.PingPongBWGBs, xt.PingPongBWGBs), nil
		},
	},
	{
		ID:   "stream",
		Text: "BG/P exhibits higher absolute STREAM bandwidth and less SP-to-EP decline than the XT (Table 2)",
		Check: func(o Options) (bool, string, error) {
			bgp, err := hpcc.SingleAndEP(machine.BGP, 128)
			if err != nil {
				return false, "", err
			}
			xt, err := hpcc.SingleAndEP(machine.XT4QC, 128)
			if err != nil {
				return false, "", err
			}
			dB := (bgp.StreamSPGB - bgp.StreamEPGB) / bgp.StreamSPGB
			dX := (xt.StreamSPGB - xt.StreamEPGB) / xt.StreamSPGB
			ok := bgp.StreamSPGB > xt.StreamSPGB && dB < dX
			return ok, fmt.Sprintf("SP %.2f vs %.2f GB/s; decline %.0f%% vs %.0f%%",
				bgp.StreamSPGB, xt.StreamSPGB, dB*100, dX*100), nil
		},
	},
	{
		ID:   "hpl-scaling",
		Text: "both systems scale HPL well (Figure 1a)",
		Check: func(o Options) (bool, string, error) {
			eff := func(id machine.ID) float64 {
				m := machine.Get(id)
				r1 := hpcc.HPLAnalytic(id, machine.VN, 256, hpcc.ProblemSizeN(m, machine.VN, 256, 0.8), hpcc.BlockingNB(id))
				r4 := hpcc.HPLAnalytic(id, machine.VN, 1024, hpcc.ProblemSizeN(m, machine.VN, 1024, 0.8), hpcc.BlockingNB(id))
				return (r4 / 4) / r1
			}
			b, x := eff(machine.BGP), eff(machine.XT4QC)
			return b > 0.9 && x > 0.9, fmt.Sprintf("256->1024 efficiency: BG/P %.2f, XT %.2f", b, x), nil
		},
	},
	{
		ID:   "top500",
		Text: "the ORNL BG/P TOP500 run scores ~21.4 TF (§II.C)",
		Check: func(o Options) (bool, string, error) {
			gf := hpcc.HPLAnalytic(machine.BGP, machine.VN, 8192, 614399, 96)
			return gf > 19000 && gf < 24000, fmt.Sprintf("simulated %.0f GF vs paper 21400", gf), nil
		},
	},
	{
		ID:   "halo-sendrecv",
		Text: "MPI_SENDRECV is slower than the nonblocking halo protocols for certain sizes (Figure 2a)",
		Check: func(o Options) (bool, string, error) {
			base := halo.Options{Machine: machine.BGP, Mode: machine.VN, GridX: 16, GridY: 8,
				Mapping: topology.MapTXYZ, Words: 16, Iterations: 3}
			base.Protocol = halo.IsendIrecv
			di, err := halo.Run(base)
			if err != nil {
				return false, "", err
			}
			base.Protocol = halo.SendRecv
			ds, err := halo.Run(base)
			if err != nil {
				return false, "", err
			}
			return ds > di, fmt.Sprintf("sendrecv %.1f us vs isend/irecv %.1f us", ds.Microseconds(), di.Microseconds()), nil
		},
	},
	{
		ID:   "halo-mapping",
		Text: "process mapping is unimportant for small halos but important for large ones (Figure 2c/d)",
		Check: func(o Options) (bool, string, error) {
			spread := func(words int) (float64, error) {
				var lo, hi float64
				for _, m := range topology.PaperHALOMappings {
					d, err := halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
						GridX: 32, GridY: 16, Mapping: m, Protocol: halo.IsendIrecv,
						Words: words, Iterations: 3})
					if err != nil {
						return 0, err
					}
					v := d.Seconds()
					if lo == 0 || v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				return hi / lo, nil
			}
			small, err := spread(8)
			if err != nil {
				return false, "", err
			}
			large, err := spread(20000)
			if err != nil {
				return false, "", err
			}
			// Small halos see only the latency difference between
			// on-node and one-hop neighbours (a few tens of percent);
			// large halos see full link contention (multiples).
			return small < 1.3 && large > 2*small,
				fmt.Sprintf("spread %.2fx at 8 words, %.2fx at 20000 words", small, large), nil
		},
	},
	{
		ID:   "allreduce-precision",
		Text: "double precision Allreduce is substantially faster than single precision on BG/P but not the XT (Figure 3a/b)",
		Check: func(o Options) (bool, string, error) {
			bd, err := imb.AllreduceLatency(machine.BGP, 256, 32<<10, true)
			if err != nil {
				return false, "", err
			}
			bs, err := imb.AllreduceLatency(machine.BGP, 256, 32<<10, false)
			if err != nil {
				return false, "", err
			}
			xd, err := imb.AllreduceLatency(machine.XT4QC, 256, 32<<10, true)
			if err != nil {
				return false, "", err
			}
			xs, err := imb.AllreduceLatency(machine.XT4QC, 256, 32<<10, false)
			if err != nil {
				return false, "", err
			}
			ok := bs.Seconds() > 3*bd.Seconds() && xd == xs
			return ok, fmt.Sprintf("BG/P %.0f vs %.0f us; XT %.0f vs %.0f us",
				bd.Microseconds(), bs.Microseconds(), xd.Microseconds(), xs.Microseconds()), nil
		},
	},
	{
		ID:   "bcast-tree",
		Text: "BG/P dramatically outperforms the XT on Bcast at all message sizes (Figure 3c)",
		Check: func(o Options) (bool, string, error) {
			for _, bytes := range []int{8, 1024, 32 << 10, 1 << 20} {
				b, err := imb.BcastLatency(machine.BGP, 256, bytes)
				if err != nil {
					return false, "", err
				}
				x, err := imb.BcastLatency(machine.XT4QC, 256, bytes)
				if err != nil {
					return false, "", err
				}
				if b.Seconds()*3 > x.Seconds() {
					return false, fmt.Sprintf("at %d bytes: BG/P %.0f vs XT %.0f us (<3x)",
						bytes, b.Microseconds(), x.Microseconds()), nil
				}
			}
			return true, "BG/P >3x faster at 8B..1MB", nil
		},
	},
	{
		ID:   "pop-ratio",
		Text: "XT4 delivers roughly 3-4x BG/P's POP throughput per process (Figure 4c, §III.A)",
		Check: func(o Options) (bool, string, error) {
			procs := 2000
			if o.Full {
				procs = 8000
			}
			b, err := pop.Run(pop.Options{Machine: machine.BGP, Mode: machine.VN, Procs: procs, Solver: pop.ChronopoulosGear})
			if err != nil {
				return false, "", err
			}
			x, err := pop.Run(pop.Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: procs, Solver: pop.ChronopoulosGear})
			if err != nil {
				return false, "", err
			}
			ratio := x.SYD / b.SYD
			return ratio > 2.8 && ratio < 4.6, fmt.Sprintf("ratio %.2f at %d processes", ratio, procs), nil
		},
	},
	{
		ID:   "pop-barotropic",
		Text: "the latency-bound barotropic phase is cheap on BG/P thanks to the tree network (Figure 4b/d)",
		Check: func(o Options) (bool, string, error) {
			r, err := pop.Run(pop.Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2000,
				Solver: pop.ChronopoulosGear, TimingBarrier: true})
			if err != nil {
				return false, "", err
			}
			frac := r.BarotropicSec / r.SecondsPerDay
			return frac < 0.2, fmt.Sprintf("barotropic is %.0f%% of the day", frac*100), nil
		},
	},
	{
		ID:   "cam-hybrid",
		Text: "OpenMP parallelism extends CAM's scalability beyond the spectral dycore's MPI limit (Figure 5a)",
		Check: func(o Options) (bool, string, error) {
			pure, err := cam.Run(cam.Options{Machine: machine.BGP, Mode: machine.VN, Procs: 64, Problem: cam.T42})
			if err != nil {
				return false, "", err
			}
			hybrid, err := cam.Run(cam.Options{Machine: machine.BGP, Mode: machine.SMP, Procs: 64, Problem: cam.T42})
			if err != nil {
				return false, "", err
			}
			return hybrid.SYPD > 1.5*pure.SYPD,
				fmt.Sprintf("pure MPI cap %.1f SYPD; hybrid at 256 cores %.1f SYPD", pure.SYPD, hybrid.SYPD), nil
		},
	},
	{
		ID:   "cam-ratio",
		Text: "BG/P is never less than 2.1x slower than the XT3 and 3.1x slower than the XT4 on spectral CAM (Figure 5c)",
		Check: func(o Options) (bool, string, error) {
			b, _, err := cam.Best(machine.BGP, cam.T85, 128)
			if err != nil {
				return false, "", err
			}
			x3, _, err := cam.Best(machine.XT3, cam.T85, 128)
			if err != nil {
				return false, "", err
			}
			x4, _, err := cam.Best(machine.XT4QC, cam.T85, 128)
			if err != nil {
				return false, "", err
			}
			r3, r4 := x3.SYPD/b.SYPD, x4.SYPD/b.SYPD
			return r3 > 1.8 && r4 > 2.6, fmt.Sprintf("XT3 %.2fx, XT4 %.2fx", r3, r4), nil
		},
	},
	{
		ID:   "s3d-weak",
		Text: "S3D exhibits excellent weak scaling (Figure 6)",
		Check: func(o Options) (bool, string, error) {
			s, err := s3d.WeakScaling(machine.BGP, machine.VN, []int{8, 512})
			if err != nil {
				return false, "", err
			}
			growth := s.Y[1] / s.Y[0]
			return growth < 1.1, fmt.Sprintf("cost grows %.3fx from 8 to 512 tasks", growth), nil
		},
	},
	{
		ID:   "gyro-memory",
		Text: "GYRO's B3-gtc must run in DUAL mode on BG/P due to memory (Figure 7b)",
		Check: func(o Options) (bool, string, error) {
			vn := gyro.FitsMemory(machine.BGP, machine.VN, gyro.B3GTC, 2048)
			dual := gyro.FitsMemory(machine.BGP, machine.DUAL, gyro.B3GTC, 2048)
			return !vn && dual, fmt.Sprintf("fits VN: %v, fits DUAL: %v (%.0f MB/task)",
				vn, dual, gyro.MemoryPerRankMB(gyro.B3GTC, 2048)), nil
		},
	},
	{
		ID:   "md-efficiency",
		Text: "the BG/P collective network yields higher MD parallel efficiencies; PMEMD scaling is more limited (§III.E)",
		Check: func(o Options) (bool, string, error) {
			bgp, err := md.Run(md.Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2048, Code: md.LAMMPS})
			if err != nil {
				return false, "", err
			}
			xt, err := md.Run(md.Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 2048, Code: md.LAMMPS})
			if err != nil {
				return false, "", err
			}
			pme, err := md.Run(md.Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2048, Code: md.PMEMD})
			if err != nil {
				return false, "", err
			}
			ok := bgp.Efficiency > xt.Efficiency && pme.Efficiency < bgp.Efficiency
			return ok, fmt.Sprintf("LAMMPS eff BG/P %.2f vs XT %.2f; PMEMD %.2f",
				bgp.Efficiency, xt.Efficiency, pme.Efficiency), nil
		},
	},
	{
		ID:   "power-percore",
		Text: "BG/P needs ~7.7 W/core under HPL vs ~51 W/core on the XT — a factor of 6.6 (Table 3)",
		Check: func(o Options) (bool, string, error) {
			b := power.PerCoreWatts(machine.Get(machine.BGP), power.HPL)
			x := power.PerCoreWatts(machine.Get(machine.XT4QC), power.HPL)
			ratio := x / b
			return ratio > 6 && ratio < 7, fmt.Sprintf("%.1f vs %.1f W/core, ratio %.1f", b, x, ratio), nil
		},
	},
	{
		ID:   "power-mflopsw",
		Text: "BG/P delivers ~348 MFlops/W on HPL vs ~130 for the XT — a ratio of 2.68 (Table 3)",
		Check: func(o Options) (bool, string, error) {
			rb := hpcc.HPLAnalytic(machine.BGP, machine.VN, 8192,
				hpcc.ProblemSizeN(machine.Get(machine.BGP), machine.VN, 8192, 0.8), 144)
			rx := hpcc.HPLAnalytic(machine.XT4QC, machine.VN, 8192,
				hpcc.ProblemSizeN(machine.Get(machine.XT4QC), machine.VN, 8192, 0.8), 168)
			mb := power.MFlopsPerWatt(machine.Get(machine.BGP), 8192, rb*1e9, power.HPL)
			mx := power.MFlopsPerWatt(machine.Get(machine.XT4QC), 8192, rx*1e9, power.HPL)
			ratio := mb / mx
			return ratio > 2.3 && ratio < 3.1, fmt.Sprintf("%.0f vs %.0f MFlops/W, ratio %.2f", mb, mx, ratio), nil
		},
	},
	{
		ID:   "power-science",
		Text: "the BG/P power advantage shrinks sharply under the science-driven fixed-throughput metric (Table 3, §IV)",
		Check: func(o Options) (bool, string, error) {
			target := 2.0
			maxCores := 12000
			bModel := pop.SYDModel(machine.BGP, machine.VN, pop.ChronopoulosGear)
			xModel := pop.SYDModel(machine.XT4QC, machine.VN, pop.ChronopoulosGear)
			bf, err := power.AtThroughput(machine.Get(machine.BGP), target, 256, maxCores, bModel)
			if err != nil {
				return false, "", err
			}
			xf, err := power.AtThroughput(machine.Get(machine.XT4QC), target, 256, maxCores, xModel)
			if err != nil {
				return false, "", err
			}
			// Per-core the BG/P is 6.6x better; at fixed throughput the
			// two systems' aggregate powers must be within ~2.5x.
			ratio := xf.KW / bf.KW
			return ratio < 2.5, fmt.Sprintf("at %.0f SYD: BG/P %d cores %.0f kW, XT %d cores %.0f kW (ratio %.2f, vs 6.6 per-core)",
				target, bf.Cores, bf.KW, xf.Cores, xf.KW, ratio), nil
		},
	},
}
