package paper

import (
	"fmt"

	"bgpsim/internal/facility"
	"bgpsim/internal/stats"
)

func init() {
	register("facility", "Supplementary: multi-job facility, BG vs XT allocation under a rack blast (docs/FACILITY.md)", facilityExp)
}

// facilityWorkload is the shared job mix: a two-rack (2048-node) BG/P
// machine under EASY backfill, three app-skeleton cohorts with the
// three fault policies, and one correlated failure forced to rack
// scale (PCard=PMidplane=PRack=1) mid-mix — so a rack-level blast
// kills one of the machine's two racks while several jobs run, and
// the other rack's jobs survive untouched. Only the placement policy
// (alloc=bg vs alloc=xt) differs between the two runs.
func facilityWorkload(full bool) string {
	jobs, gap := 14, "1700ms"
	if full {
		jobs, gap = 36, "2s"
	}
	return fmt.Sprintf("seed=%d,machine=BG/P,nodes=2048,sched=easy,jobs=%d,phase=0s:%s,"+
		"cohort=halo:128:3:14s:1000:failstop,"+
		"cohort=cg:64:2:8s:500:cancel,"+
		"cohort=fft:32:1:5s:200:restart,"+
		"blast=12s/100/1/1/1/0.6", faultSeed, jobs, gap)
}

// facilityExp runs the same seeded workload under BlueGene-style
// isolated-prism allocation and XT-style linear-scan allocation, and
// tabulates what the paper's §II.A.3 contrast costs at facility scale:
// utilization, queue waits, fragmentation, per-job link share, and the
// reach of one rack-level blast across concurrent jobs.
func facilityExp(o Options) ([]*stats.Table, error) {
	spec := facilityWorkload(o.Full)
	results := map[string]*facility.Result{}
	for _, al := range []string{"bg", "xt"} {
		w, err := facility.Parse(spec + ",alloc=" + al)
		if err != nil {
			return nil, err
		}
		res, err := facility.Run(facility.Params{Workload: w, Shards: o.Shards})
		if err != nil {
			return nil, fmt.Errorf("facility alloc=%s: %v", al, err)
		}
		results[al] = res
	}

	cmp := stats.NewTable("facility: BG prism vs XT linear allocation (same workload)",
		"alloc", "makespan(s)", "util", "mean wait(s)", "max wait(s)",
		"frag mean", "frag max", "backfills", "mean extshare", "mean spread", "blast jobs hit")
	for _, al := range []string{"bg", "xt"} {
		r := results[al]
		var ext, spread float64
		placed := 0
		for _, j := range r.Jobs {
			if len(j.Starts) == 0 {
				continue
			}
			ext += j.ExtFrac
			spread += j.Spread
			placed++
		}
		if placed > 0 {
			ext /= float64(placed)
			spread /= float64(placed)
		}
		hit := 0
		for _, b := range r.Blasts {
			hit += len(b.Hits)
		}
		cmp.AddRow(al,
			stats.FormatG(r.Makespan.Seconds()), stats.FormatG(r.Utilization),
			stats.FormatG(r.MeanWait.Seconds()), stats.FormatG(r.MaxWait.Seconds()),
			stats.FormatG(r.FragMean), stats.FormatG(r.FragMax),
			fmt.Sprintf("%d", r.Backfills), stats.FormatG(ext), stats.FormatG(spread),
			fmt.Sprintf("%d", hit))
	}

	tables := []*stats.Table{cmp}
	for _, al := range []string{"bg", "xt"} {
		bt := results[al].BlastTable()
		bt.Title = fmt.Sprintf("facility blasts (alloc=%s)", al)
		tables = append(tables, bt)
	}
	jt := results["bg"].JobTable()
	jt.Title = "facility jobs (alloc=bg)"
	tables = append(tables, jt)
	return tables, nil
}
