package paper

import (
	"fmt"

	"bgpsim/internal/halo"
	"bgpsim/internal/imb"
	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
	"bgpsim/internal/topology"
)

func init() {
	register("fig2", "HALO exchange: protocols, mappings, grid sizes", fig2)
	register("fig3", "IMB Allreduce and Bcast latency", fig3)
}

// haloWords returns the halo-size sweep (in 32-bit words).
func haloWords(o Options) []int {
	if o.Full {
		return []int{2, 8, 32, 128, 512, 2048, 8192, 32768, 131072}
	}
	return []int{8, 128, 2048, 32768}
}

func fig2(o Options) ([]*stats.Table, error) {
	words := haloWords(o)

	// Every point of every panel is an independent simulation; queue
	// them all as jobs, sweep them concurrently on the runner pool,
	// and render the figures afterwards.
	var figs []*stats.Figure
	var jobs []job
	haloJob := func(s *stats.Series, w int, o halo.Options) job {
		return job{
			run: func() (any, error) { return halo.Run(o) },
			commit: func(v any) {
				s.Add(float64(w), v.(sim.Duration).Microseconds())
			},
		}
	}

	// Panel (a)/(b): protocols on the VN and SMP grids.
	type panel struct {
		title string
		mode  machine.Mode
		gx    int
		gy    int
		mapg  topology.Mapping
	}
	var panels []panel
	if o.Full {
		panels = []panel{
			{"Figure 2(a): protocols, 8192 cores VN 128x64 TXYZ", machine.VN, 128, 64, topology.MapTXYZ},
			{"Figure 2(b): protocols, 2048 cores SMP 64x32 XYZT", machine.SMP, 64, 32, topology.MapXYZT},
		}
	} else {
		panels = []panel{
			{"Figure 2(a): protocols, 512 cores VN 32x16 TXYZ", machine.VN, 32, 16, topology.MapTXYZ},
			{"Figure 2(b): protocols, 128 cores SMP 16x8 XYZT", machine.SMP, 16, 8, topology.MapXYZT},
		}
	}
	for _, p := range panels {
		f := stats.NewFigure(p.title, "halo words", "exchange time (us)")
		for _, proto := range []halo.Protocol{halo.IsendIrecv, halo.SendRecv, halo.IrecvSend, halo.Persistent} {
			s := f.AddSeries(proto.String())
			for _, w := range words {
				jobs = append(jobs, haloJob(s, w, halo.Options{
					Machine: machine.BGP, Mode: p.mode, GridX: p.gx, GridY: p.gy,
					Mapping: p.mapg, Protocol: proto, Words: w, Iterations: 3,
				}))
			}
		}
		figs = append(figs, f)
	}

	// Panel (c)/(d): mapping sensitivity.
	mapGrids := [][2]int{{32, 16}, {32, 32}}
	if o.Full {
		mapGrids = [][2]int{{64, 64}, {128, 64}}
	}
	for i, g := range mapGrids {
		f := stats.NewFigure(
			fmt.Sprintf("Figure 2(%c): mappings, %d cores VN %dx%d",
				'c'+i, g[0]*g[1], g[0], g[1]),
			"halo words", "exchange time (us)")
		for _, m := range topology.PaperHALOMappings {
			s := f.AddSeries(string(m))
			for _, w := range words {
				jobs = append(jobs, haloJob(s, w, halo.Options{
					Machine: machine.BGP, Mode: machine.VN, GridX: g[0], GridY: g[1],
					Mapping: m, Protocol: halo.IsendIrecv, Words: w, Iterations: 3,
				}))
			}
		}
		figs = append(figs, f)
	}

	// Panel (e)/(f): best-mapping cost versus virtual grid size.
	grids := [][2]int{{16, 8}, {32, 16}, {32, 32}}
	if o.Full {
		grids = [][2]int{{32, 32}, {64, 32}, {64, 64}, {128, 64}}
	}
	for i, mode := range []machine.Mode{machine.VN, machine.SMP} {
		f := stats.NewFigure(
			fmt.Sprintf("Figure 2(%c): best mapping per grid, %s mode", 'e'+i, mode),
			"halo words", "exchange time (us)")
		for _, g := range grids {
			if mode == machine.SMP && g[0]*g[1] > 2048 {
				continue
			}
			s := f.AddSeries(fmt.Sprintf("%dx%d", g[0], g[1]))
			for _, w := range words {
				opts := halo.Options{
					Machine: machine.BGP, Mode: mode, GridX: g[0], GridY: g[1],
					Protocol: halo.IsendIrecv, Words: w, Iterations: 3,
				}
				s := s
				w := w
				jobs = append(jobs, job{
					run: func() (any, error) {
						_, d, err := halo.BestMapping(opts,
							[]topology.Mapping{topology.MapTXYZ, topology.MapXYZT})
						return d, err
					},
					commit: func(v any) {
						s.Add(float64(w), v.(sim.Duration).Microseconds())
					},
				})
			}
		}
		figs = append(figs, f)
	}

	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for _, f := range figs {
		tables = append(tables, f.Table())
	}
	return tables, nil
}

func fig3(o Options) ([]*stats.Table, error) {
	ranks := 256
	maxBytes := 256 << 10
	procCounts := []int{16, 64, 256, 1024}
	if o.Full {
		ranks = 8192
		maxBytes = 1 << 20
		procCounts = []int{128, 512, 2048, 8192}
	}
	// The four panels are independent sweeps; run them concurrently.
	figs := make([]*stats.Figure, 0, 4)
	var jobs []job
	panel := func(prefix, suffix string, run func() (*stats.Figure, error)) {
		figs = append(figs, nil)
		i := len(figs) - 1
		jobs = append(jobs, job{
			run: func() (any, error) { return run() },
			commit: func(v any) {
				f := v.(*stats.Figure)
				f.Title = prefix + f.Title + suffix
				figs[i] = f
			},
		})
	}
	perRanks := fmt.Sprintf(" (%d processes)", ranks)
	panel("Figure 3(a): ", perRanks, func() (*stats.Figure, error) { return imb.AllreduceVsSize(ranks, maxBytes) })
	panel("Figure 3(b): ", "", func() (*stats.Figure, error) { return imb.AllreduceVsProcs(procCounts) })
	panel("Figure 3(c): ", perRanks, func() (*stats.Figure, error) { return imb.BcastVsSize(ranks, maxBytes) })
	panel("Figure 3(d): ", "", func() (*stats.Figure, error) { return imb.BcastVsProcs(procCounts) })
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for _, f := range figs {
		tables = append(tables, f.Table())
	}
	return tables, nil
}
