package paper

import (
	"errors"
	"fmt"
	"strconv"

	"bgpsim/internal/ckpt"
	"bgpsim/internal/fault"
	"bgpsim/internal/iosys"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
	"bgpsim/internal/topology"
)

func init() {
	register("faults", "Supplementary: resilience under injected faults (docs/RESILIENCE.md)", faults)
}

// faultSeed seeds every random fault placement in this experiment, so
// the tables are byte-identical across runs and worker counts.
const faultSeed = 12345

// faults measures the machine models under the deterministic fault
// plans of internal/fault: nearest-neighbour exchange bandwidth as
// torus links degrade and fail, collective latency under OS noise
// (the paper's noiseless-CNK argument), the typed errors surfaced by
// unsurvivable faults, and checkpoint/restart time-to-solution from
// the Daly model with write costs taken from the I/O subsystem model.
func faults(o Options) ([]*stats.Table, error) {
	nodes := 64
	if o.Full {
		nodes = 256
	}
	dims := topology.DimsForNodes(nodes)

	// 1. Ring exchange on a BG/P partition as the torus degrades: each
	// scenario is an independent simulation with its own fault plan.
	exchange := func(plan func(*topology.Torus) (*fault.Plan, error)) (float64, error) {
		tor := topology.NewTorus(dims)
		p, err := plan(tor)
		if err != nil {
			return 0, err
		}
		cfg := mpi.Config{Machine: machine.Get(machine.BGP), Nodes: nodes, Dims: dims,
			Mode: machine.VN, Mapping: topology.MapXYZT, Fidelity: network.Contention,
			Faults: p}
		res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for k := 0; k < 4; k++ {
				r.Sendrecv(right, 64<<10, k, left, k)
			}
		})
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	healthyPlan := func(*topology.Torus) (*fault.Plan, error) { return nil, nil }
	degrade := func(frac, factor float64) func(*topology.Torus) (*fault.Plan, error) {
		return func(tor *topology.Torus) (*fault.Plan, error) {
			p := fault.NewPlan(faultSeed)
			if _, err := p.DegradeRandomLinks(tor, frac, factor); err != nil {
				return nil, err
			}
			return p, nil
		}
	}
	failN := func(count int) func(*topology.Torus) (*fault.Plan, error) {
		return func(tor *topology.Torus) (*fault.Plan, error) {
			p := fault.NewPlan(faultSeed)
			if _, err := p.FailRandomLinks(tor, count); err != nil {
				return nil, err
			}
			return p, nil
		}
	}
	linkScenarios := []struct {
		name string
		plan func(*topology.Torus) (*fault.Plan, error)
	}{
		{"healthy torus", healthyPlan},
		{"10% of links at 3/4 bandwidth", degrade(0.10, 0.75)},
		{"10% of links at 1/2 bandwidth", degrade(0.10, 0.5)},
		{"10% of links at 1/4 bandwidth", degrade(0.10, 0.25)},
		{"2 links failed (rerouted)", failN(2)},
		{"8 links failed (rerouted)", failN(8)},
	}

	// 2. Compute/allreduce loop under OS noise: the same program on a
	// noiseless kernel (BG/P CNK), the XT kernels' measured profiles,
	// and a forced heavy-noise profile applied to everyone.
	forced := fault.NoiseProfile{Period: sim.Millisecond, Duration: 50 * sim.Microsecond}
	noisy := func(id machine.ID, mode string) (float64, error) {
		var p *fault.Plan
		switch mode {
		case "machine":
			p = fault.NewPlan(faultSeed)
			p.UseMachineNoise()
		case "forced":
			p = fault.NewPlan(faultSeed)
			if err := p.SetNoise(forced); err != nil {
				return 0, err
			}
		}
		cfg := mpi.Config{Machine: machine.Get(id), Nodes: nodes, Dims: dims,
			Mode: machine.SMP, Faults: p}
		res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
			for i := 0; i < 20; i++ {
				r.Compute(2e7, 2e7, machine.ClassStencil)
				r.World().Allreduce(r, 8, true)
			}
		})
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	noiseMachines := []machine.ID{machine.BGP, machine.XT3, machine.XT4QC}

	// 3. Unsurvivable faults surface as typed errors, not hangs.
	killRun := func() (string, error) {
		p := fault.NewPlan(faultSeed)
		p.KillNode(3, sim.Time(5*sim.Millisecond))
		_, err := mpi.Execute(mpi.Config{Machine: machine.Get(machine.BGP),
			Nodes: 16, Mode: machine.SMP, Faults: p},
			func(r *mpi.Rank) {
				for i := 0; i < 1000; i++ {
					r.World().Barrier(r)
					r.Advance(100 * sim.Microsecond)
				}
			})
		var rf *mpi.RankFailure
		if !errors.As(err, &rf) {
			return "", fmt.Errorf("node kill: got %v, want *mpi.RankFailure", err)
		}
		return fmt.Sprintf("*mpi.RankFailure: %v", rf), nil
	}
	partitionRun := func() (string, error) {
		tor := topology.NewTorus(topology.Dims{4, 2, 2})
		p := fault.NewPlan(faultSeed)
		p.IsolateNode(tor, 5)
		_, err := mpi.Execute(mpi.Config{Machine: machine.Get(machine.BGP),
			Nodes: 16, Dims: topology.Dims{4, 2, 2}, Mode: machine.SMP, Faults: p},
			func(r *mpi.Rank) {
				switch r.ID() {
				case 0:
					r.Send(5, 4096, 1)
				case 5:
					r.Recv(0, 1)
				}
			})
		var ld *topology.LinkDownError
		if !errors.As(err, &ld) {
			return "", fmt.Errorf("partition: got %v, want *topology.LinkDownError", err)
		}
		return fmt.Sprintf("*topology.LinkDownError: %v", ld), nil
	}

	// Fan every simulation out on the runner pool; commit in fixed order.
	exchangeUS := make([]float64, len(linkScenarios))
	noiseUS := make([][3]float64, len(noiseMachines))
	var killMsg, partMsg string
	var jobs []job
	for i, sc := range linkScenarios {
		i, sc := i, sc
		jobs = append(jobs, job{
			run:    func() (any, error) { return exchange(sc.plan) },
			commit: func(v any) { exchangeUS[i] = v.(float64) },
		})
	}
	for i, id := range noiseMachines {
		for j, mode := range []string{"off", "machine", "forced"} {
			i, j, id, mode := i, j, id, mode
			jobs = append(jobs, job{
				run:    func() (any, error) { return noisy(id, mode) },
				commit: func(v any) { noiseUS[i][j] = v.(float64) },
			})
		}
	}
	jobs = append(jobs,
		job{run: func() (any, error) { return killRun() },
			commit: func(v any) { killMsg = v.(string) }},
		job{run: func() (any, error) { return partitionRun() },
			commit: func(v any) { partMsg = v.(string) }},
	)
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	t1 := stats.NewTable(
		fmt.Sprintf("Ring exchange under link faults (BG/P, %d nodes, 64KB, seed %d)", nodes, faultSeed),
		"Torus state", "Exchange (us)", "Slowdown")
	for i, sc := range linkScenarios {
		t1.AddRow(sc.name, stats.FormatG(exchangeUS[i]),
			stats.FormatG(exchangeUS[i]/exchangeUS[0]))
	}

	t2 := stats.NewTable(
		fmt.Sprintf("Compute+8B-allreduce loop under OS noise (%d nodes, 20 iterations)", nodes),
		"Machine", "Quiet (us)", "OS noise (us)", "Factor", "Forced 50us/1ms (us)", "Factor")
	for i, id := range noiseMachines {
		quiet, osn, fn := noiseUS[i][0], noiseUS[i][1], noiseUS[i][2]
		t2.AddRow(string(id), stats.FormatG(quiet),
			stats.FormatG(osn), stats.FormatG(osn/quiet),
			stats.FormatG(fn), stats.FormatG(fn/quiet))
	}

	t3 := stats.NewTable("Unsurvivable faults surface as typed errors",
		"Scenario", "Result")
	t3.AddRow("node 3 dies during barrier loop", killMsg)
	t3.AddRow("torus partitioned around node 5", partMsg)

	t4, err := checkpointTable(o)
	if err != nil {
		return nil, err
	}
	t5, err := recoveryTable()
	if err != nil {
		return nil, err
	}
	t6, err := simulatedCheckpointTable(o)
	if err != nil {
		return nil, err
	}
	t7, err := replayTable()
	if err != nil {
		return nil, err
	}

	return []*stats.Table{t1, t2, t3, t4, t5, t6, t7}, nil
}

// replayTable exercises the message-logging layer on a point-to-point
// workload that transparent recovery alone cannot survive: rank pairs
// exchanging across the eager/rendezvous switch while a node dies.
// With log=sender the orphaned traffic is cancelled and the victim's
// partner unwinds; with restart=ckpt the kill becomes a priced
// user-level restart (reboot, checkpoint read-back, rework, replay of
// the logged messages) and nobody leaves the job. The analytic
// fidelity keeps the scenarios sharding-eligible, so this table is
// part of the byte-identical -shards/-j smoke in `make check`.
func replayTable() (*stats.Table, error) {
	const nodes = 16
	prog := func(r *mpi.Rank) {
		p := r.ID() ^ 1
		for i := 0; i < 6; i++ {
			r.Advance(10 * sim.Microsecond)
			bytes := 512
			if i%2 == 1 {
				bytes = 50 << 10
			}
			if r.ID() < p {
				r.Send(p, bytes, i)
				r.Recv(p, i)
			} else {
				r.Recv(p, i)
				r.Send(p, bytes, i)
			}
			if i == 2 {
				r.CommitCheckpoint(1 << 20)
			}
		}
	}
	run := func(spec string) (*mpi.Result, error) {
		var plan *fault.Plan
		if spec != "" {
			p, _, err := fault.BuildForPartition(spec, machine.BGP, nodes)
			if err != nil {
				return nil, err
			}
			plan = p
		}
		cfg := mpi.Config{Machine: machine.Get(machine.BGP), Nodes: nodes,
			Mode: machine.SMP, Fidelity: network.Analytic, Faults: plan}
		return mpi.Execute(cfg, prog)
	}
	scenarios := []struct {
		name string
		spec string
	}{
		{"healthy", ""},
		{"node 5 dies, orphans cancelled", fmt.Sprintf("seed=%d,recover,log=sender,kill=5@25us", faultSeed)},
		{"node 5 dies, user-level restart", fmt.Sprintf("seed=%d,recover,log=sender,restart=ckpt,kill=5@25us", faultSeed)},
	}

	results := make([]*mpi.Result, len(scenarios))
	var jobs []job
	for i, sc := range scenarios {
		i, sc := i, sc
		jobs = append(jobs, job{
			run:    func() (any, error) { return run(sc.spec) },
			commit: func(v any) { results[i] = v.(*mpi.Result) },
		})
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Message logging and sender-based replay (BG/P, %d nodes, pair exchange, seed %d)", nodes, faultSeed),
		"Scenario", "Elapsed (us)", "Lost", "Peer-lost", "Orphans", "Restarts", "Replays", "Replay (B)", "Restart (us)")
	for i, sc := range scenarios {
		r := results[i]
		t.AddRow(sc.name, stats.FormatG(r.Elapsed.Microseconds()),
			strconv.Itoa(len(r.Lost)),
			strconv.Itoa(len(r.PeerLost)),
			strconv.FormatInt(r.Net.Orphans, 10),
			strconv.FormatInt(r.Net.Restarts, 10),
			strconv.FormatInt(r.Net.Replays, 10),
			strconv.FormatInt(r.Net.ReplayBytes, 10),
			stats.FormatG(r.Net.RestartTime.Microseconds()))
	}
	return t, nil
}

// recoveryTable runs the same collective loop under transparent
// recovery (fault.Plan.EnableRecovery) for increasingly severe
// correlated failures: a healthy baseline, a single leaf of the
// collective tree (the hardware reprograms its class routes), an
// interior tree node (hardware offloads demote to torus algorithms),
// and a node-card blast that takes out half the partition at once.
func recoveryTable() (*stats.Table, error) {
	const nodes = 64
	dims := topology.Dims{4, 4, 4}
	run := func(plan *fault.Plan) (*mpi.Result, error) {
		cfg := mpi.Config{Machine: machine.Get(machine.BGP), Nodes: nodes, Dims: dims,
			Mode: machine.SMP, Fidelity: network.Contention, Faults: plan}
		return mpi.Execute(cfg, func(r *mpi.Rank) {
			for i := 0; i < 8; i++ {
				r.Advance(20 * sim.Microsecond)
				r.World().Barrier(r)
			}
		})
	}
	kill := func(node int) func() (*fault.Plan, error) {
		return func() (*fault.Plan, error) {
			p := fault.NewPlan(faultSeed)
			p.KillNode(node, sim.Time(50*sim.Microsecond))
			p.EnableRecovery()
			return p, nil
		}
	}
	scenarios := []struct {
		name string
		plan func() (*fault.Plan, error)
	}{
		{"healthy", func() (*fault.Plan, error) { return nil, nil }},
		{"leaf node 63 dies (tree rebuilt)", kill(63)},
		{"interior node 0 dies (HW demoted)", kill(0)},
		{"node-card blast: 32 nodes die", func() (*fault.Plan, error) {
			spec, err := fault.ParseSpec(fmt.Sprintf("seed=%d,recover,blast=50us/7/1/0/0/1", faultSeed))
			if err != nil {
				return nil, err
			}
			p, _, err := spec.Build(topology.NewTorus(dims), machine.Get(machine.BGP).Hierarchy())
			return p, err
		}},
	}

	results := make([]*mpi.Result, len(scenarios))
	var jobs []job
	for i, sc := range scenarios {
		i, sc := i, sc
		jobs = append(jobs, job{
			run: func() (any, error) {
				p, err := sc.plan()
				if err != nil {
					return nil, err
				}
				return run(p)
			},
			commit: func(v any) { results[i] = v.(*mpi.Result) },
		})
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Transparent collective recovery (BG/P, %d nodes, 8-barrier loop, seed %d)", nodes, faultSeed),
		"Scenario", "Elapsed (us)", "Lost", "Recoveries", "Tree rebuilds", "HW fallbacks", "Recovery (us)")
	for i, sc := range scenarios {
		r := results[i]
		t.AddRow(sc.name, stats.FormatG(r.Elapsed.Microseconds()),
			strconv.Itoa(len(r.Lost)),
			strconv.FormatInt(r.Net.Recoveries, 10),
			strconv.FormatInt(r.Net.TreeRebuilds, 10),
			strconv.FormatInt(r.Net.HWFallbacks, 10),
			stats.FormatG(r.Net.RecoveryTime.Microseconds()))
	}
	return t, nil
}

// simulatedCheckpointTable is the differential companion of
// checkpointTable: instead of pricing checkpoints with the Daly
// closed form, it runs internal/ckpt — checkpoints as real writes
// through the storage model, failures as seeded exponential arrivals —
// and compares the mean simulated time-to-solution with the analytic
// expectation at each interval. The same seeds are used at every
// interval, so the sweep compares intervals on identical failure
// realizations.
func simulatedCheckpointTable(o Options) (*stats.Table, error) {
	const (
		nodes        = 64
		work         = 2000.0
		bytesPerNode = 16 << 20
		rebootCost   = 60.0
	)
	seeds := uint64(4)
	if o.Full {
		seeds = 10
	}
	storage := iosys.ORNLEugene()
	nodeMTBF := 1800.0 * nodes // system MTBF 1800s
	mtbf := fault.SystemMTBF(nodeMTBF, nodes)
	delta, err := fault.CheckpointWriteCost(storage, nodes, bytesPerNode)
	if err != nil {
		return nil, err
	}
	opt := fault.YoungDaly(delta, mtbf)
	sweep := []struct {
		label  string
		factor float64
	}{
		{"0.25x optimal", 0.25},
		{"Young/Daly optimal", 1},
		{"4x optimal", 4},
	}

	sums := make([]float64, len(sweep))
	var jobs []job
	for i, p := range sweep {
		for seed := uint64(1); seed <= seeds; seed++ {
			i, tau, seed := i, opt*p.factor, seed
			jobs = append(jobs, job{
				run: func() (any, error) {
					res, err := ckpt.Run(ckpt.Params{
						Machine: machine.Get(machine.BGP), Nodes: nodes, Storage: storage,
						Work: work, Interval: tau, BytesPerNode: bytesPerNode,
						Reboot: rebootCost, NodeMTBF: nodeMTBF, Seed: seed,
					})
					if err != nil {
						return nil, err
					}
					return res.TTS, nil
				},
				commit: func(v any) { sums[i] += v.(float64) },
			})
		}
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	t := stats.NewTable(
		fmt.Sprintf("Simulated checkpoint/restart vs Daly model (BG/P Eugene, %d nodes, %d seeds)", nodes, int(seeds)),
		"Interval", "tau (s)", "Simulated TTS (s)", "Daly TTS (s)", "Ratio")
	for i, p := range sweep {
		c := fault.Checkpointer{Interval: opt * p.factor, WriteCost: delta,
			RestartCost: rebootCost + delta, MTBF: mtbf}
		want, err := c.ExpectedRuntime(work)
		if err != nil {
			return nil, err
		}
		got := sums[i] / float64(seeds)
		t.AddRow(p.label, stats.FormatG(opt*p.factor), stats.FormatG(got),
			stats.FormatG(want), stats.FormatG(got/want))
	}
	return t, nil
}

// checkpointTable sweeps checkpoint intervals around the Young/Daly
// optimum for a day of work on BG/P (Eugene's I/O forwarding tree) and
// on the XT (Jaguar's Lustre-style stripes), with per-node MTBF scaled
// down by node count.
func checkpointTable(o Options) (*stats.Table, error) {
	ckNodes := 1024
	if o.Full {
		ckNodes = 4096
	}
	const (
		work         = 86400.0 // one day of compute, seconds
		nodeMTBF     = 10 * 365 * 86400.0
		bytesPerNode = 512e6 // half the BG/P node memory
		rebootCost   = 60.0
	)
	systems := []struct {
		name    string
		storage *iosys.Storage
	}{
		{"BG/P (Eugene I/O tree)", iosys.ORNLEugene()},
		{"XT4 (Jaguar Lustre)", iosys.ORNLJaguar()},
	}
	t := stats.NewTable(
		fmt.Sprintf("Checkpoint/restart time-to-solution, %d nodes, 24h of work (Daly model)", ckNodes),
		"System", "Interval", "tau (s)", "Expected TTS (h)", "Overhead (%)")
	mtbf := fault.SystemMTBF(nodeMTBF, ckNodes)
	for _, sys := range systems {
		delta, err := fault.CheckpointWriteCost(sys.storage, ckNodes, bytesPerNode)
		if err != nil {
			return nil, err
		}
		opt := fault.YoungDaly(delta, mtbf)
		sweep := []struct {
			label string
			tau   float64
		}{
			{"0.25x optimal", opt / 4},
			{"Young/Daly optimal", opt},
			{"4x optimal", opt * 4},
		}
		for _, p := range sweep {
			c := fault.Checkpointer{Interval: p.tau, WriteCost: delta,
				RestartCost: delta + rebootCost, MTBF: mtbf}
			tts, err := c.ExpectedRuntime(work)
			if err != nil {
				return nil, err
			}
			t.AddRow(sys.name, p.label, stats.FormatG(p.tau),
				stats.FormatG(tts/3600), stats.FormatG((tts-work)/work*100))
		}
	}
	t.AddRow("", fmt.Sprintf("system MTBF %.1f h, checkpoint %.0f MB/node", mtbf/3600, bytesPerNode/1e6),
		"", "", "")
	return t, nil
}
