package paper

import (
	"fmt"
	"testing"

	"bgpsim/internal/runner"
)

// TestColltuneWinners pins the sweep's winner table: for every
// (machine, collective, size) point the fastest measured algorithm.
// The values document where the stock selection tables are optimal
// (tree offload everywhere on BG/P; the MPICH switch points for
// bcast/allreduce) and where a non-default algorithm wins (Bruck for
// latency-bound allgather/alltoall, scatter-allgather for large
// broadcasts on the XT).
func TestColltuneWinners(t *testing.T) {
	if testing.Short() {
		t.Skip("full colltune sweep")
	}
	_, cases, err := colltuneSweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"BG/P|barrier|0":              "hw-gi",
		"BG/P|bcast|16":               "tree-offload",
		"BG/P|bcast|512":              "tree-offload",
		"BG/P|bcast|8192":             "tree-offload",
		"BG/P|bcast|131072":           "tree-offload",
		"BG/P|allreduce|16":           "tree-offload",
		"BG/P|allreduce|512":          "tree-offload",
		"BG/P|allreduce|8192":         "tree-offload",
		"BG/P|allreduce|131072":       "tree-offload",
		"BG/P|allgather|16":           "bruck",
		"BG/P|allgather|512":          "bruck",
		"BG/P|allgather|8192":         "bruck",
		"BG/P|allgather|131072":       "bruck",
		"BG/P|alltoall|16":            "bruck",
		"BG/P|alltoall|512":           "pairwise",
		"BG/P|alltoall|8192":          "pairwise",
		"BG/P|alltoall|131072":        "pairwise",
		"BG/P|reducescatter|16":       "rechalving",
		"BG/P|reducescatter|512":      "pairwise",
		"BG/P|reducescatter|8192":     "rechalving",
		"BG/P|reducescatter|131072":   "rechalving",
		"XT4/QC|barrier|0":            "dissemination",
		"XT4/QC|bcast|16":             "binomial",
		"XT4/QC|bcast|512":            "binomial",
		"XT4/QC|bcast|8192":           "binomial",
		"XT4/QC|bcast|131072":         "scatter-allgather",
		"XT4/QC|allreduce|16":         "recdbl",
		"XT4/QC|allreduce|512":        "recdbl",
		"XT4/QC|allreduce|8192":       "rabenseifner",
		"XT4/QC|allreduce|131072":     "rabenseifner",
		"XT4/QC|allgather|16":         "bruck",
		"XT4/QC|allgather|512":        "bruck",
		"XT4/QC|allgather|8192":       "bruck",
		"XT4/QC|allgather|131072":     "bruck",
		"XT4/QC|alltoall|16":          "bruck",
		"XT4/QC|alltoall|512":         "bruck",
		"XT4/QC|alltoall|8192":        "pairwise",
		"XT4/QC|alltoall|131072":      "pairwise",
		"XT4/QC|reducescatter|16":     "rechalving",
		"XT4/QC|reducescatter|512":    "rechalving",
		"XT4/QC|reducescatter|8192":   "pairwise",
		"XT4/QC|reducescatter|131072": "rechalving",
	}
	if len(cases) != len(want) {
		t.Fatalf("sweep produced %d points, want %d", len(cases), len(want))
	}
	for _, c := range cases {
		k := fmt.Sprintf("%s|%s|%d", c.mach, c.op, c.bytes)
		w, ok := want[k]
		if !ok {
			t.Errorf("unexpected sweep point %s", k)
			continue
		}
		if got := c.winner().algo; got != w {
			t.Errorf("%s: winner = %s, want %s", k, got, w)
		}
		if us := c.winner().us; !(us > 0) {
			t.Errorf("%s: winner time %v not positive", k, us)
		}
		if c.pickUS() <= 0 {
			t.Errorf("%s: table default %q not among measured candidates", k, c.pick)
		}
	}
}

// TestColltuneDeterministic pins the -j contract for the sweep: the
// rendered tables are byte-identical at 1 and 8 workers.
func TestColltuneDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the colltune sweep twice")
	}
	defer runner.SetWorkers(0)
	runner.SetWorkers(1)
	serial := renderAll(t, "colltune")
	runner.SetWorkers(8)
	parallel := renderAll(t, "colltune")
	if serial != parallel {
		t.Errorf("colltune output differs between -j 1 and -j 8\n-- j1 --\n%s\n-- j8 --\n%s",
			serial, parallel)
	}
}
