package paper

import (
	"strings"
	"testing"

	"bgpsim/internal/runner"
	"bgpsim/internal/stats"
)

// renderAll runs the experiment and renders its tables exactly as
// cmd/paper writes them to stdout.
func renderAll(t *testing.T, id string) string {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		if tb.Chart != "" {
			b.WriteString("\n" + tb.Chart)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestWorkerCountInvariance pins the -j contract: for sweep-heavy
// experiments the rendered output at 1 worker and at 8 workers must be
// byte-identical, because every simulation is deterministic and the
// runner commits results in input order.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep comparison")
	}
	defer runner.SetWorkers(0)
	ids := []string{"fig2", "fig3", "ablations", "fig8"}
	if raceEnabled {
		// One experiment exercises the concurrent commit path fully;
		// breadth belongs to the faster non-race run.
		ids = ids[:1]
	}
	for _, id := range ids {
		runner.SetWorkers(1)
		serial := renderAll(t, id)
		runner.SetWorkers(8)
		parallel := renderAll(t, id)
		if serial != parallel {
			t.Errorf("%s: output differs between -j 1 and -j 8\n-- j1 --\n%s\n-- j8 --\n%s",
				id, serial, parallel)
		}
	}
}

// TestVerifyClaimsOrderStable checks that concurrent claim
// verification preserves registration order.
func TestVerifyClaimsOrderStable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every claim twice")
	}
	if raceEnabled {
		t.Skip("claim sweep is minutes-long under -race; Sweep concurrency is covered by TestWorkerCountInvariance")
	}
	defer runner.SetWorkers(0)
	runner.SetWorkers(8)
	a := VerifyClaims(Options{})
	runner.SetWorkers(1)
	b := VerifyClaims(Options{})
	if len(a) != len(b) || len(a) != len(claims) {
		t.Fatalf("got %d and %d results for %d claims", len(a), len(b), len(claims))
	}
	for i := range a {
		if a[i].Claim.ID != claims[i].ID {
			t.Errorf("result %d is %q, want %q", i, a[i].Claim.ID, claims[i].ID)
		}
		if a[i].Pass != b[i].Pass || a[i].Detail != b[i].Detail {
			t.Errorf("claim %q differs between -j 8 and -j 1: %+v vs %+v",
				a[i].Claim.ID, a[i], b[i])
		}
	}
}

// TestJobsCommitInOrder exercises the paper fan-out helper directly.
func TestJobsCommitInOrder(t *testing.T) {
	f := stats.NewFigure("t", "x", "y")
	s := f.AddSeries("s")
	var jobs []job
	for i := 0; i < 50; i++ {
		i := i
		jobs = append(jobs, job{
			run:    func() (any, error) { return float64(i), nil },
			commit: func(v any) { s.Add(float64(i), v.(float64)) },
		})
	}
	if err := runJobs(jobs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if s.X[i] != float64(i) || s.Y[i] != float64(i) {
			t.Fatalf("point %d = (%g, %g), want (%d, %d)", i, s.X[i], s.Y[i], i, i)
		}
	}
}
