//go:build !race

package paper

const raceEnabled = false
