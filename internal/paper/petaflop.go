package paper

import (
	"fmt"

	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
	"bgpsim/internal/power"
	"bgpsim/internal/stats"
)

func init() {
	register("petaflop", "Supplementary: 72-rack petaflop projection (paper intro)", petaflop)
}

// petaflop projects the full 72-rack BlueGene/P the paper's
// introduction describes: "73,728 compute nodes, or 294,912 cores,
// would have a peak performance of 1 PFlop/s" — and extends the
// projection to HPL, power and efficiency using the same models that
// reproduce the measured 2-rack numbers.
func petaflop(o Options) ([]*stats.Table, error) {
	m := machine.Get(machine.BGP)
	const racks = 72
	nodes := racks * 1024
	cores := nodes * m.CoresPerNode

	t := stats.NewTable("72-rack BlueGene/P projection", "Metric", "Value", "Paper/context")
	t.AddRow("Racks", fmt.Sprintf("%d", racks), "72 [intro]")
	t.AddRow("Compute nodes", fmt.Sprintf("%d", nodes), "73,728 [intro]")
	t.AddRow("Cores", fmt.Sprintf("%d", cores), "294,912 [intro]")

	peak := m.PeakFlopsCore() * float64(cores)
	t.AddRow("Peak (PFlop/s)", stats.FormatG(peak/1e15), "1 PFlop/s [intro]")

	n := hpcc.ProblemSizeN(m, machine.VN, cores, 0.8)
	rmax := hpcc.HPLAnalytic(machine.BGP, machine.VN, cores, n, 144)
	t.AddRow("Projected HPL Rmax (PFlop/s)", stats.FormatG(rmax/1e6),
		"same model that gives 21.9 TF on the 2-rack system")
	t.AddRow("HPL problem size N", fmt.Sprintf("%d", n), "80% of 144 TB aggregate memory")

	kw := power.AggregateKW(m, cores, power.HPL)
	t.AddRow("Power under HPL (MW)", stats.FormatG(kw/1000), "7.7 W/core [Table 3]")
	t.AddRow("Efficiency (MFlops/W)", stats.FormatG(power.MFlopsPerWatt(m, cores, rmax*1e9, power.HPL)),
		"per-core power is scale-free in the model")
	return []*stats.Table{t}, nil
}
