package paper

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpsim/internal/calib"
	"bgpsim/internal/machine"
)

var updateCalibGolden = flag.Bool("update-calib-golden", false, "rewrite testdata/calib_golden.txt from the current output")

func calibGoldenPath() string { return filepath.Join("testdata", "calib_golden.txt") }

func renderCalib(t *testing.T) string {
	t.Helper()
	e, err := Get("calib")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestCalibGolden pins the entire -exp calib report byte for byte: the
// fit trajectories, the fitted-model residuals, and the CI-annotated
// variability tables. Any drift in the catalog, the search, the
// variability draws, or the CI math fails here. Refresh deliberately
// with -update-calib-golden.
func TestCalibGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-comparison golden; the non-race run covers it and TestAllExperimentsRunReduced covers the concurrent paths")
	}
	got := renderCalib(t)
	if *updateCalibGolden {
		if err := os.MkdirAll(filepath.Dir(calibGoldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(calibGoldenPath(), []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(calibGoldenPath())
	if err != nil {
		t.Fatalf("%v (run with -update-calib-golden to create)", err)
	}
	if got != string(want) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("calib golden drift at line %d:\n got: %q\nwant: %q", i+1, g, w)
			}
		}
		t.Fatal("calib golden drift")
	}
}

// TestCalibGoldenTripsOnParamDrift is the golden's mutation guard: a
// perturbed fitted parameter must change the residual table the golden
// pins, so the golden genuinely protects the fit, not just the
// formatting around it.
func TestCalibGoldenTripsOnParamDrift(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-comparison guard; the non-race run covers it")
	}
	res, err := calib.Fit(machine.BGP, calib.DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	baseline := res.ResidualTable().String()
	want, err := os.ReadFile(calibGoldenPath())
	if err != nil {
		t.Fatalf("%v (run with -update-calib-golden to create)", err)
	}
	if !strings.Contains(string(want), baseline) {
		t.Fatalf("golden does not contain the BG/P residual table; guard is vacuous:\n%s", baseline)
	}
	drifted := res.FittedMachine()
	drifted.TorusLinkBW *= 1.2
	rs, err := calib.Residuals(machine.BGP, drifted)
	if err != nil {
		t.Fatal(err)
	}
	mutated := calib.ResidualTable(fmt.Sprintf("%s fitted-model residuals", machine.BGP), rs).String()
	if mutated == baseline {
		t.Fatal("20% link-bandwidth drift left the residual table unchanged; the golden cannot catch fit regressions")
	}
}
