package paper

import (
	"fmt"

	"bgpsim/internal/apps/cam"
	"bgpsim/internal/apps/gyro"
	"bgpsim/internal/apps/md"
	"bgpsim/internal/apps/pop"
	"bgpsim/internal/apps/s3d"
	"bgpsim/internal/machine"
	"bgpsim/internal/stats"
)

func init() {
	register("fig4", "POP tenth-degree benchmark", fig4)
	register("fig5", "CAM dycore benchmarks", fig5)
	register("fig6", "S3D weak scaling", fig6)
	register("fig7", "GYRO benchmarks", fig7)
	register("fig8", "LAMMPS and AMBER/PMEMD on RuBisCO", fig8)
}

func fig4(o Options) ([]*stats.Table, error) {
	bgpProcs := []int{500, 1000, 2000}
	xtProcs := []int{500, 1000, 2000}
	if o.Full {
		bgpProcs = []int{2000, 4000, 8000, 20000, 40000}
		xtProcs = []int{2000, 4000, 8000, 22500}
	}

	// Panel (a): BG/P VN vs SMP, CG vs ChronGear.
	fa := stats.NewFigure("Figure 4(a): POP total performance on BG/P", "processes", "SYD")
	type variant struct {
		name   string
		mode   machine.Mode
		solver pop.Solver
	}
	for _, v := range []variant{
		{"VN ChronGear", machine.VN, pop.ChronopoulosGear},
		{"VN CG", machine.VN, pop.StandardCG},
		{"SMP ChronGear", machine.SMP, pop.ChronopoulosGear},
	} {
		s := fa.AddSeries(v.name)
		for _, p := range bgpProcs {
			r, err := pop.Run(pop.Options{Machine: machine.BGP, Mode: v.mode, Procs: p, Solver: v.solver})
			if err != nil {
				return nil, err
			}
			s.Add(float64(p), r.SYD)
		}
	}

	// Panel (b): phase breakdown on BG/P with the timing barrier.
	fb := stats.NewFigure("Figure 4(b): POP phases on BG/P (timing barrier)", "processes", "seconds per simulated day")
	bcl := fb.AddSeries("baroclinic")
	btr := fb.AddSeries("barotropic")
	bar := fb.AddSeries("barrier (imbalance)")
	for _, p := range bgpProcs {
		r, err := pop.Run(pop.Options{Machine: machine.BGP, Mode: machine.VN, Procs: p,
			Solver: pop.ChronopoulosGear, TimingBarrier: true})
		if err != nil {
			return nil, err
		}
		bcl.Add(float64(p), r.BaroclinicSec)
		btr.Add(float64(p), r.BarotropicSec)
		bar.Add(float64(p), r.BarrierSec)
	}

	// Panel (c): BG/P vs XT4 total performance.
	fc := stats.NewFigure("Figure 4(c): POP, BG/P vs XT4 (Catamount)", "processes", "SYD")
	for _, id := range []machine.ID{machine.BGP, machine.XT4DC} {
		procs := bgpProcs
		if id == machine.XT4DC {
			procs = xtProcs
		}
		s := fc.AddSeries(string(id))
		for _, p := range procs {
			r, err := pop.Run(pop.Options{Machine: id, Mode: machine.VN, Procs: p, Solver: pop.ChronopoulosGear})
			if err != nil {
				return nil, err
			}
			s.Add(float64(p), r.SYD)
		}
	}

	// Panel (d): phase comparison across machines (no timing barrier
	// on the XT, as in the paper).
	fd := stats.NewFigure("Figure 4(d): POP phases, BG/P vs XT4", "processes", "seconds per simulated day")
	for _, id := range []machine.ID{machine.BGP, machine.XT4DC} {
		procs := bgpProcs
		tb := true
		if id == machine.XT4DC {
			procs = xtProcs
			tb = false
		}
		sb := fd.AddSeries(string(id) + " baroclinic")
		st := fd.AddSeries(string(id) + " barotropic")
		for _, p := range procs {
			r, err := pop.Run(pop.Options{Machine: id, Mode: machine.VN, Procs: p,
				Solver: pop.ChronopoulosGear, TimingBarrier: tb})
			if err != nil {
				return nil, err
			}
			sb.Add(float64(p), r.BaroclinicSec)
			st.Add(float64(p), r.BarotropicSec)
		}
	}
	return []*stats.Table{fa.Table(), fb.Table(), fc.Table(), fd.Table()}, nil
}

func fig5(o Options) ([]*stats.Table, error) {
	coreCounts := []int{32, 64, 128, 256}
	if o.Full {
		coreCounts = []int{64, 128, 256, 512, 1024}
	}

	// Panels (a)/(b): BG/P pure MPI vs hybrid.
	var tables []*stats.Table
	for i, probs := range [][]cam.Problem{{cam.T42, cam.T85}, {cam.FV19, cam.FV047}} {
		f := stats.NewFigure(fmt.Sprintf("Figure 5(%c): CAM on BG/P, MPI vs hybrid", 'a'+i),
			"cores", "SYPD")
		for _, prob := range probs {
			mpiS := f.AddSeries(prob.Name + " MPI")
			ompS := f.AddSeries(prob.Name + " MPI+OMP")
			for _, cores := range coreCounts {
				if cores <= prob.MaxMPI {
					r, err := cam.Run(cam.Options{Machine: machine.BGP, Mode: machine.VN,
						Procs: cores, Problem: prob})
					if err != nil {
						return nil, err
					}
					mpiS.Add(float64(cores), r.SYPD)
				}
				procs := cores / 4
				if procs >= 1 && procs <= prob.MaxMPI {
					r, err := cam.Run(cam.Options{Machine: machine.BGP, Mode: machine.SMP,
						Procs: procs, Problem: prob})
					if err != nil {
						return nil, err
					}
					ompS.Add(float64(cores), r.SYPD)
				}
			}
		}
		tables = append(tables, f.Table())
	}

	// Panels (c)/(d): best-configuration comparison across machines.
	for i, probs := range [][]cam.Problem{{cam.T42, cam.T85}, {cam.FV19}} {
		f := stats.NewFigure(fmt.Sprintf("Figure 5(%c): CAM best configuration by platform", 'c'+i),
			"cores", "SYPD")
		for _, prob := range probs {
			for _, id := range []machine.ID{machine.BGP, machine.XT3, machine.XT4QC} {
				s := f.AddSeries(fmt.Sprintf("%s %s", prob.Name, id))
				for _, cores := range coreCounts {
					r, _, err := cam.Best(id, prob, cores)
					if err != nil {
						return nil, err
					}
					s.Add(float64(cores), r.SYPD)
				}
			}
		}
		tables = append(tables, f.Table())
	}
	return tables, nil
}

func fig6(o Options) ([]*stats.Table, error) {
	procs := []int{8, 64, 512}
	if o.Full {
		procs = []int{64, 512, 1728, 4096, 12000}
	}
	f := stats.NewFigure("Figure 6: S3D weak scaling (50^3 points per task)",
		"processes", "core-hours per grid point per step")
	for _, id := range []machine.ID{machine.BGP, machine.BGL, machine.XT3, machine.XT4DC, machine.XT4QC} {
		s, err := s3d.WeakScaling(id, machine.VN, procs)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}
	return []*stats.Table{f.Table()}, nil
}

func fig7(o Options) ([]*stats.Table, error) {
	b1Procs := []int{16, 64, 256}
	b3ProcsXT := []int{64, 256, 1024}
	b3ProcsBGP := []int{256, 1024} // smaller counts do not fit DUAL-mode memory
	weakProcs := []int{64, 256, 1024}
	if o.Full {
		b1Procs = []int{16, 64, 256, 1024}
		b3ProcsXT = []int{64, 256, 1024, 2048}
		b3ProcsBGP = []int{256, 1024, 2048}
		weakProcs = []int{64, 256, 1024, 4096}
	}

	fa := stats.NewFigure("Figure 7(a): GYRO B1-std strong scaling", "processes", "total seconds (500 steps)")
	for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
		s, err := gyro.StrongScaling(id, machine.VN, gyro.B1Std, b1Procs)
		if err != nil {
			return nil, err
		}
		fa.Series = append(fa.Series, s)
	}

	fb := stats.NewFigure("Figure 7(b): GYRO B3-gtc strong scaling (BG/P in DUAL mode)", "processes", "total seconds (100 steps)")
	sx, err := gyro.StrongScaling(machine.XT4QC, machine.VN, gyro.B3GTC, b3ProcsXT)
	if err != nil {
		return nil, err
	}
	sb, err := gyro.StrongScaling(machine.BGP, machine.DUAL, gyro.B3GTC, b3ProcsBGP)
	if err != nil {
		return nil, err
	}
	fb.Series = append(fb.Series, sb, sx)

	fc := stats.NewFigure("Figure 7(c): GYRO modified B3-gtc weak scaling", "processes", "seconds per step")
	for _, c := range []struct {
		id   machine.ID
		mode machine.Mode
	}{{machine.BGP, machine.VN}, {machine.BGL, machine.VN}, {machine.XT4QC, machine.VN}} {
		s, err := gyro.WeakScaled(c.id, c.mode, weakProcs)
		if err != nil {
			return nil, err
		}
		fc.Series = append(fc.Series, s)
	}
	return []*stats.Table{fa.Table(), fb.Table(), fc.Table()}, nil
}

func fig8(o Options) ([]*stats.Table, error) {
	procs := []int{64, 256, 1024}
	if o.Full {
		procs = []int{128, 512, 2048, 8192}
	}
	machines := []machine.ID{machine.BGP, machine.BGL, machine.XT3, machine.XT4DC}
	var tables []*stats.Table
	for i, code := range []md.Code{md.LAMMPS, md.PMEMD} {
		f := stats.NewFigure(fmt.Sprintf("Figure 8(%c): %s on RuBisCO (290,220 atoms)", 'a'+i, code),
			"processes", "ns/day")
		for _, id := range machines {
			s, err := md.Scaling(id, machine.VN, code, procs)
			if err != nil {
				return nil, err
			}
			f.Series = append(f.Series, s)
		}
		tables = append(tables, f.Table())
	}
	return tables, nil
}
