package paper

import (
	"fmt"

	"bgpsim/internal/apps/cam"
	"bgpsim/internal/apps/gyro"
	"bgpsim/internal/apps/md"
	"bgpsim/internal/apps/pop"
	"bgpsim/internal/apps/s3d"
	"bgpsim/internal/machine"
	"bgpsim/internal/stats"
)

func init() {
	register("fig4", "POP tenth-degree benchmark", fig4)
	register("fig5", "CAM dycore benchmarks", fig5)
	register("fig6", "S3D weak scaling", fig6)
	register("fig7", "GYRO benchmarks", fig7)
	register("fig8", "LAMMPS and AMBER/PMEMD on RuBisCO", fig8)
}

// seriesSlot reserves the next series position of a figure and returns
// a job that fills it: used when a model call (s3d.WeakScaling,
// gyro.StrongScaling, ...) produces a whole series at once but the
// calls should run concurrently without disturbing series order.
func seriesSlot(f *stats.Figure, run func() (*stats.Series, error)) job {
	f.Series = append(f.Series, nil)
	i := len(f.Series) - 1
	return job{
		run:    func() (any, error) { return run() },
		commit: func(v any) { f.Series[i] = v.(*stats.Series) },
	}
}

// popJob runs one POP configuration and hands the result to commit.
func popJob(o pop.Options, commit func(*pop.Result)) job {
	return job{
		run:    func() (any, error) { return pop.Run(o) },
		commit: func(v any) { commit(v.(*pop.Result)) },
	}
}

func fig4(o Options) ([]*stats.Table, error) {
	bgpProcs := []int{500, 1000, 2000}
	xtProcs := []int{500, 1000, 2000}
	if o.Full {
		bgpProcs = []int{2000, 4000, 8000, 20000, 40000}
		xtProcs = []int{2000, 4000, 8000, 22500}
	}
	var jobs []job

	// Panel (a): BG/P VN vs SMP, CG vs ChronGear.
	fa := stats.NewFigure("Figure 4(a): POP total performance on BG/P", "processes", "SYD")
	type variant struct {
		name   string
		mode   machine.Mode
		solver pop.Solver
	}
	for _, v := range []variant{
		{"VN ChronGear", machine.VN, pop.ChronopoulosGear},
		{"VN CG", machine.VN, pop.StandardCG},
		{"SMP ChronGear", machine.SMP, pop.ChronopoulosGear},
	} {
		s := fa.AddSeries(v.name)
		for _, p := range bgpProcs {
			s, p := s, p
			jobs = append(jobs, popJob(
				pop.Options{Machine: machine.BGP, Mode: v.mode, Procs: p, Solver: v.solver},
				func(r *pop.Result) { s.Add(float64(p), r.SYD) }))
		}
	}

	// Panel (b): phase breakdown on BG/P with the timing barrier.
	fb := stats.NewFigure("Figure 4(b): POP phases on BG/P (timing barrier)", "processes", "seconds per simulated day")
	bcl := fb.AddSeries("baroclinic")
	btr := fb.AddSeries("barotropic")
	bar := fb.AddSeries("barrier (imbalance)")
	for _, p := range bgpProcs {
		p := p
		jobs = append(jobs, popJob(
			pop.Options{Machine: machine.BGP, Mode: machine.VN, Procs: p,
				Solver: pop.ChronopoulosGear, TimingBarrier: true},
			func(r *pop.Result) {
				bcl.Add(float64(p), r.BaroclinicSec)
				btr.Add(float64(p), r.BarotropicSec)
				bar.Add(float64(p), r.BarrierSec)
			}))
	}

	// Panel (c): BG/P vs XT4 total performance.
	fc := stats.NewFigure("Figure 4(c): POP, BG/P vs XT4 (Catamount)", "processes", "SYD")
	for _, id := range []machine.ID{machine.BGP, machine.XT4DC} {
		procs := bgpProcs
		if id == machine.XT4DC {
			procs = xtProcs
		}
		s := fc.AddSeries(string(id))
		for _, p := range procs {
			s, p, id := s, p, id
			jobs = append(jobs, popJob(
				pop.Options{Machine: id, Mode: machine.VN, Procs: p, Solver: pop.ChronopoulosGear},
				func(r *pop.Result) { s.Add(float64(p), r.SYD) }))
		}
	}

	// Panel (d): phase comparison across machines (no timing barrier
	// on the XT, as in the paper).
	fd := stats.NewFigure("Figure 4(d): POP phases, BG/P vs XT4", "processes", "seconds per simulated day")
	for _, id := range []machine.ID{machine.BGP, machine.XT4DC} {
		procs := bgpProcs
		tb := true
		if id == machine.XT4DC {
			procs = xtProcs
			tb = false
		}
		sb := fd.AddSeries(string(id) + " baroclinic")
		st := fd.AddSeries(string(id) + " barotropic")
		for _, p := range procs {
			p, id, tb := p, id, tb
			jobs = append(jobs, popJob(
				pop.Options{Machine: id, Mode: machine.VN, Procs: p,
					Solver: pop.ChronopoulosGear, TimingBarrier: tb},
				func(r *pop.Result) {
					sb.Add(float64(p), r.BaroclinicSec)
					st.Add(float64(p), r.BarotropicSec)
				}))
		}
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	return []*stats.Table{fa.Table(), fb.Table(), fc.Table(), fd.Table()}, nil
}

func fig5(o Options) ([]*stats.Table, error) {
	coreCounts := []int{32, 64, 128, 256}
	if o.Full {
		coreCounts = []int{64, 128, 256, 512, 1024}
	}
	var jobs []job
	camJob := func(s *stats.Series, x int, o cam.Options) job {
		return job{
			run:    func() (any, error) { return cam.Run(o) },
			commit: func(v any) { s.Add(float64(x), v.(*cam.Result).SYPD) },
		}
	}

	// Panels (a)/(b): BG/P pure MPI vs hybrid.
	var figs []*stats.Figure
	for i, probs := range [][]cam.Problem{{cam.T42, cam.T85}, {cam.FV19, cam.FV047}} {
		f := stats.NewFigure(fmt.Sprintf("Figure 5(%c): CAM on BG/P, MPI vs hybrid", 'a'+i),
			"cores", "SYPD")
		for _, prob := range probs {
			mpiS := f.AddSeries(prob.Name + " MPI")
			ompS := f.AddSeries(prob.Name + " MPI+OMP")
			for _, cores := range coreCounts {
				if cores <= prob.MaxMPI {
					jobs = append(jobs, camJob(mpiS, cores, cam.Options{
						Machine: machine.BGP, Mode: machine.VN, Procs: cores, Problem: prob}))
				}
				procs := cores / 4
				if procs >= 1 && procs <= prob.MaxMPI {
					jobs = append(jobs, camJob(ompS, cores, cam.Options{
						Machine: machine.BGP, Mode: machine.SMP, Procs: procs, Problem: prob}))
				}
			}
		}
		figs = append(figs, f)
	}

	// Panels (c)/(d): best-configuration comparison across machines.
	for i, probs := range [][]cam.Problem{{cam.T42, cam.T85}, {cam.FV19}} {
		f := stats.NewFigure(fmt.Sprintf("Figure 5(%c): CAM best configuration by platform", 'c'+i),
			"cores", "SYPD")
		for _, prob := range probs {
			for _, id := range []machine.ID{machine.BGP, machine.XT3, machine.XT4QC} {
				s := f.AddSeries(fmt.Sprintf("%s %s", prob.Name, id))
				for _, cores := range coreCounts {
					s, id, prob, cores := s, id, prob, cores
					jobs = append(jobs, job{
						run: func() (any, error) {
							r, _, err := cam.Best(id, prob, cores)
							return r, err
						},
						commit: func(v any) { s.Add(float64(cores), v.(*cam.Result).SYPD) },
					})
				}
			}
		}
		figs = append(figs, f)
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for _, f := range figs {
		tables = append(tables, f.Table())
	}
	return tables, nil
}

func fig6(o Options) ([]*stats.Table, error) {
	procs := []int{8, 64, 512}
	if o.Full {
		procs = []int{64, 512, 1728, 4096, 12000}
	}
	f := stats.NewFigure("Figure 6: S3D weak scaling (50^3 points per task)",
		"processes", "core-hours per grid point per step")
	var jobs []job
	for _, id := range []machine.ID{machine.BGP, machine.BGL, machine.XT3, machine.XT4DC, machine.XT4QC} {
		id := id
		jobs = append(jobs, seriesSlot(f, func() (*stats.Series, error) {
			return s3d.WeakScaling(id, machine.VN, procs)
		}))
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	return []*stats.Table{f.Table()}, nil
}

func fig7(o Options) ([]*stats.Table, error) {
	b1Procs := []int{16, 64, 256}
	b3ProcsXT := []int{64, 256, 1024}
	b3ProcsBGP := []int{256, 1024} // smaller counts do not fit DUAL-mode memory
	weakProcs := []int{64, 256, 1024}
	if o.Full {
		b1Procs = []int{16, 64, 256, 1024}
		b3ProcsXT = []int{64, 256, 1024, 2048}
		b3ProcsBGP = []int{256, 1024, 2048}
		weakProcs = []int{64, 256, 1024, 4096}
	}
	var jobs []job

	fa := stats.NewFigure("Figure 7(a): GYRO B1-std strong scaling", "processes", "total seconds (500 steps)")
	for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
		id := id
		jobs = append(jobs, seriesSlot(fa, func() (*stats.Series, error) {
			return gyro.StrongScaling(id, machine.VN, gyro.B1Std, b1Procs)
		}))
	}

	fb := stats.NewFigure("Figure 7(b): GYRO B3-gtc strong scaling (BG/P in DUAL mode)", "processes", "total seconds (100 steps)")
	jobs = append(jobs, seriesSlot(fb, func() (*stats.Series, error) {
		return gyro.StrongScaling(machine.BGP, machine.DUAL, gyro.B3GTC, b3ProcsBGP)
	}))
	jobs = append(jobs, seriesSlot(fb, func() (*stats.Series, error) {
		return gyro.StrongScaling(machine.XT4QC, machine.VN, gyro.B3GTC, b3ProcsXT)
	}))

	fc := stats.NewFigure("Figure 7(c): GYRO modified B3-gtc weak scaling", "processes", "seconds per step")
	for _, c := range []struct {
		id   machine.ID
		mode machine.Mode
	}{{machine.BGP, machine.VN}, {machine.BGL, machine.VN}, {machine.XT4QC, machine.VN}} {
		c := c
		jobs = append(jobs, seriesSlot(fc, func() (*stats.Series, error) {
			return gyro.WeakScaled(c.id, c.mode, weakProcs)
		}))
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	return []*stats.Table{fa.Table(), fb.Table(), fc.Table()}, nil
}

func fig8(o Options) ([]*stats.Table, error) {
	procs := []int{64, 256, 1024}
	if o.Full {
		procs = []int{128, 512, 2048, 8192}
	}
	machines := []machine.ID{machine.BGP, machine.BGL, machine.XT3, machine.XT4DC}
	var jobs []job
	var figs []*stats.Figure
	for i, code := range []md.Code{md.LAMMPS, md.PMEMD} {
		f := stats.NewFigure(fmt.Sprintf("Figure 8(%c): %s on RuBisCO (290,220 atoms)", 'a'+i, code),
			"processes", "ns/day")
		for _, id := range machines {
			id, code := id, code
			jobs = append(jobs, seriesSlot(f, func() (*stats.Series, error) {
				return md.Scaling(id, machine.VN, code, procs)
			}))
		}
		figs = append(figs, f)
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for _, f := range figs {
		tables = append(tables, f.Table())
	}
	return tables, nil
}
