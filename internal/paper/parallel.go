package paper

import "bgpsim/internal/runner"

// job is one independent simulation point of an experiment sweep: run
// executes the simulation (concurrently with other jobs, on the runner
// pool), commit folds its value into tables or series. Commits are
// applied serially in job order after every run finishes, so the
// resulting tables are identical at any worker count.
type job struct {
	run    func() (any, error)
	commit func(any)
}

// runJobs executes the jobs on the runner pool and commits the results
// in order.
func runJobs(jobs []job) error {
	vals, err := runner.Sweep(jobs, func(j job) (any, error) { return j.run() })
	if err != nil {
		return err
	}
	for i, j := range jobs {
		j.commit(vals[i])
	}
	return nil
}
