package paper

import (
	"fmt"

	"bgpsim/internal/alloc"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/runner"
	"bgpsim/internal/stats"
	"bgpsim/internal/topology"
)

func init() {
	register("ablations", "Supplementary: design-choice ablations (DESIGN.md §4)", ablations)
}

// ablations switches off, one at a time, the mechanisms DESIGN.md
// credits for the paper's headline behaviours and shows what each is
// worth.
func ablations(o Options) ([]*stats.Table, error) {
	nodes := 64
	if o.Full {
		nodes = 512
	}

	// Each with/without measurement is an independent simulation: fan
	// them all out on the runner pool, then assemble the table rows in
	// fixed order once every value is in.
	allreduce := func(hw bool) (float64, error) {
		m := machine.Get(machine.BGP)
		m.TreeHWReduce = hw
		res, err := mpi.Execute(mpi.Config{Machine: m, Nodes: nodes, Mode: machine.VN},
			func(r *mpi.Rank) { r.World().Allreduce(r, 32<<10, true) })
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	barrier := func(hw bool) (float64, error) {
		m := machine.Get(machine.BGP)
		m.HasBarrierNet = hw
		res, err := mpi.Execute(mpi.Config{Machine: m, Nodes: nodes, Mode: machine.VN},
			func(r *mpi.Rank) { r.World().Barrier(r) })
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	exchange := func(fid network.Fidelity) (float64, error) {
		cfg := mpi.Config{Machine: machine.Get(machine.BGP), Nodes: nodes, Mode: machine.VN,
			Mapping: topology.MapXYZT, Fidelity: fid}
		res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for k := 0; k < 4; k++ {
				r.Sendrecv(right, 64<<10, k, left, k)
			}
		})
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	softAllreduce := func(noise float64) (float64, error) {
		m := machine.Get(machine.XT4QC)
		m.CollNoisePerRank = noise
		cfg := mpi.Config{Machine: m, Nodes: nodes, Mode: machine.VN, AnalyticCollectives: true}
		res, err := mpi.Execute(cfg, func(r *mpi.Rank) { r.World().Allreduce(r, 8, true) })
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	churn := func(xt bool) (*alloc.Job, error) {
		tor := topology.NewTorus(topology.Dims{8, 8, 16})
		a := alloc.Allocator(alloc.NewBGAllocator(tor))
		if xt {
			a = alloc.NewXTAllocator(tor)
		}
		return alloc.Churn(a, tor, 12345, 300, 128)
	}

	measurements := []func() (float64, error){
		func() (float64, error) { return allreduce(true) },
		func() (float64, error) { return allreduce(false) },
		func() (float64, error) { return barrier(true) },
		func() (float64, error) { return barrier(false) },
		func() (float64, error) { return exchange(network.Contention) },
		func() (float64, error) { return exchange(network.Analytic) },
		func() (float64, error) { return softAllreduce(0) },
		func() (float64, error) { return softAllreduce(machine.Get(machine.XT4QC).CollNoisePerRank) },
	}
	vals, err := runner.Sweep(measurements, func(f func() (float64, error)) (float64, error) { return f() })
	if err != nil {
		return nil, err
	}
	withTree, withoutTree := vals[0], vals[1]
	withBar, withoutBar := vals[2], vals[3]
	withCont, withoutCont := vals[4], vals[5]
	quiet, noisy := vals[6], vals[7]

	// 4. XT allocator fragmentation (the BisectionDerate evidence).
	tor := topology.NewTorus(topology.Dims{8, 8, 16})
	regions, err := runner.Sweep([]bool{false, true}, churn)
	if err != nil {
		return nil, err
	}
	bgJob, xtJob := regions[0], regions[1]
	bgSpread := alloc.Spread(tor, bgJob)
	xtSpread := alloc.Spread(tor, xtJob)

	t := stats.NewTable("Design-choice ablations",
		"Mechanism", "Metric", "With", "Without", "Factor")
	t.AddRow("collective-tree allreduce offload", "32KB allreduce latency (us)",
		stats.FormatG(withTree), stats.FormatG(withoutTree), stats.FormatG(withoutTree/withTree))
	t.AddRow("global barrier network", "barrier latency (us)",
		stats.FormatG(withBar), stats.FormatG(withoutBar), stats.FormatG(withoutBar/withBar))
	t.AddRow("link-contention model", "ring exchange time (us)",
		stats.FormatG(withCont), stats.FormatG(withoutCont), stats.FormatG(withCont/withoutCont))
	t.AddRow("partition isolation (BG vs XT allocator)", "job spread after churn",
		stats.FormatG(bgSpread), stats.FormatG(xtSpread), stats.FormatG(xtSpread/bgSpread))
	t.AddRow("", "external route fraction",
		stats.FormatG(alloc.ExternalRouteFraction(tor, bgJob)),
		stats.FormatG(alloc.ExternalRouteFraction(tor, xtJob)), "")
	t.AddRow("noiseless kernel (OS-noise term off/on)",
		fmt.Sprintf("8B software allreduce at %d ranks (us)", nodes*4),
		stats.FormatG(quiet), stats.FormatG(noisy), stats.FormatG(noisy/quiet))

	return []*stats.Table{t}, nil
}
