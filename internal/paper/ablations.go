package paper

import (
	"fmt"

	"bgpsim/internal/alloc"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/stats"
	"bgpsim/internal/topology"
)

func init() {
	register("ablations", "Supplementary: design-choice ablations (DESIGN.md §4)", ablations)
}

// ablations switches off, one at a time, the mechanisms DESIGN.md
// credits for the paper's headline behaviours and shows what each is
// worth.
func ablations(o Options) ([]*stats.Table, error) {
	nodes := 64
	if o.Full {
		nodes = 512
	}
	t := stats.NewTable("Design-choice ablations",
		"Mechanism", "Metric", "With", "Without", "Factor")

	// 1. Tree offload for double-precision Allreduce.
	allreduce := func(hw bool) (float64, error) {
		m := machine.Get(machine.BGP)
		m.TreeHWReduce = hw
		res, err := mpi.Execute(mpi.Config{Machine: m, Nodes: nodes, Mode: machine.VN},
			func(r *mpi.Rank) { r.World().Allreduce(r, 32<<10, true) })
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	withTree, err := allreduce(true)
	if err != nil {
		return nil, err
	}
	withoutTree, err := allreduce(false)
	if err != nil {
		return nil, err
	}
	t.AddRow("collective-tree allreduce offload", "32KB allreduce latency (us)",
		stats.FormatG(withTree), stats.FormatG(withoutTree), stats.FormatG(withoutTree/withTree))

	// 2. Barrier network.
	barrier := func(hw bool) (float64, error) {
		m := machine.Get(machine.BGP)
		m.HasBarrierNet = hw
		res, err := mpi.Execute(mpi.Config{Machine: m, Nodes: nodes, Mode: machine.VN},
			func(r *mpi.Rank) { r.World().Barrier(r) })
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	withBar, err := barrier(true)
	if err != nil {
		return nil, err
	}
	withoutBar, err := barrier(false)
	if err != nil {
		return nil, err
	}
	t.AddRow("global barrier network", "barrier latency (us)",
		stats.FormatG(withBar), stats.FormatG(withoutBar), stats.FormatG(withoutBar/withBar))

	// 3. Link contention model (vs analytic) on a mapping-hostile
	// neighbour exchange.
	exchange := func(fid network.Fidelity) (float64, error) {
		cfg := mpi.Config{Machine: machine.Get(machine.BGP), Nodes: nodes, Mode: machine.VN,
			Mapping: topology.MapXYZT, Fidelity: fid}
		res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for k := 0; k < 4; k++ {
				r.Sendrecv(right, 64<<10, k, left, k)
			}
		})
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	withCont, err := exchange(network.Contention)
	if err != nil {
		return nil, err
	}
	withoutCont, err := exchange(network.Analytic)
	if err != nil {
		return nil, err
	}
	t.AddRow("link-contention model", "ring exchange time (us)",
		stats.FormatG(withCont), stats.FormatG(withoutCont), stats.FormatG(withCont/withoutCont))

	// 4. XT allocator fragmentation (the BisectionDerate evidence).
	tor := topology.NewTorus(topology.Dims{8, 8, 16})
	bgJob, err := alloc.Churn(alloc.NewBGAllocator(tor), tor, 12345, 300, 128)
	if err != nil {
		return nil, err
	}
	xtJob, err := alloc.Churn(alloc.NewXTAllocator(tor), tor, 12345, 300, 128)
	if err != nil {
		return nil, err
	}
	bgSpread := alloc.Spread(tor, bgJob)
	xtSpread := alloc.Spread(tor, xtJob)
	t.AddRow("partition isolation (BG vs XT allocator)", "job spread after churn",
		stats.FormatG(bgSpread), stats.FormatG(xtSpread), stats.FormatG(xtSpread/bgSpread))
	t.AddRow("", "external route fraction",
		stats.FormatG(alloc.ExternalRouteFraction(tor, bgJob)),
		stats.FormatG(alloc.ExternalRouteFraction(tor, xtJob)), "")

	// 5. Noiseless compute kernel (CollNoisePerRank) at scale.
	softAllreduce := func(noise float64) (float64, error) {
		m := machine.Get(machine.XT4QC)
		m.CollNoisePerRank = noise
		cfg := mpi.Config{Machine: m, Nodes: nodes, Mode: machine.VN, AnalyticCollectives: true}
		res, err := mpi.Execute(cfg, func(r *mpi.Rank) { r.World().Allreduce(r, 8, true) })
		if err != nil {
			return 0, err
		}
		return res.Elapsed.Microseconds(), nil
	}
	quiet, err := softAllreduce(0)
	if err != nil {
		return nil, err
	}
	noisy, err := softAllreduce(machine.Get(machine.XT4QC).CollNoisePerRank)
	if err != nil {
		return nil, err
	}
	t.AddRow("noiseless kernel (OS-noise term off/on)",
		fmt.Sprintf("8B software allreduce at %d ranks (us)", nodes*4),
		stats.FormatG(quiet), stats.FormatG(noisy), stats.FormatG(noisy/quiet))

	return []*stats.Table{t}, nil
}
