package paper

import (
	"fmt"

	"bgpsim/internal/halo"
	"bgpsim/internal/jobspec"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
)

func init() {
	register("profile", "Supplementary: where the time goes — per-rank decomposition and critical path of representative workloads", profile)
}

// profileScenario is one workload observed end to end through its own
// recorder. Every scenario owns a distinct Recorder, so the experiment
// stays deterministic on the worker pool: recorders are written by
// exactly one simulation and read only after runJobs commits.
type profileScenario struct {
	name  string
	ranks int
	run   func() (*obs.Recorder, error)

	rec *obs.Recorder
}

// profileScenarios builds the workload list: the HALO exchange from
// Figure 2 (pure neighbour p2p), a bulk-synchronous stencil+allreduce
// loop (the classic iterative-solver shape), and an alltoall-heavy
// transpose step (the FFT communication pattern).
func profileScenarios(o Options) []*profileScenario {
	gx, gy := 8, 4
	loopRanks := 32
	if o.Full {
		gx, gy = 16, 8
		loopRanks = 256
	}

	// The HALO workload is described as a canonical job spec — the same
	// document a bgpsimd client would submit — and converted through the
	// shared jobspec path, so this experiment exercises exactly the
	// options construction the CLIs and server use.
	haloRun := func(gx, gy int) func() (*obs.Recorder, error) {
		return func() (*obs.Recorder, error) {
			opts, _, err := jobspec.Spec{
				Kind: jobspec.KindHalo, Machine: "BG/P", Mode: "VN",
				GridX: gx, GridY: gy,
				Mapping: "TXYZ", Protocol: "isend",
				Words: 2048, Iterations: 5,
			}.HaloOptions()
			if err != nil {
				return nil, err
			}
			rec := obs.NewRecorder()
			opts.Probe = rec
			if _, _, err := halo.RunResult(opts); err != nil {
				return nil, err
			}
			return rec, nil
		}
	}

	loopRun := func(ranks, bytes int, transpose, analytic bool) func() (*obs.Recorder, error) {
		fid := network.Contention
		if analytic {
			fid = network.Analytic
		}
		return func() (*obs.Recorder, error) {
			rec := obs.NewRecorder()
			m := machine.Get(machine.BGP)
			cfg := mpi.Config{Machine: m, Nodes: ranks / m.RanksPerNode(machine.VN),
				Mode: machine.VN, Fidelity: fid, Probe: rec, Shards: o.Shards}
			_, err := mpi.Execute(cfg, func(r *mpi.Rank) {
				w := r.World()
				w.Barrier(r)
				for it := 0; it < 8; it++ {
					// A grid-sized stencil sweep per iteration.
					r.Compute(2e6, 4e5, machine.ClassStencil)
					if transpose {
						w.Alltoall(r, bytes)
					} else {
						w.Allreduce(r, bytes, true)
					}
				}
			})
			if err != nil {
				return nil, err
			}
			return rec, nil
		}
	}

	return []*profileScenario{
		{name: "HALO 1-2 exchange", ranks: gx * gy, run: haloRun(gx, gy)},
		{name: "stencil+allreduce loop", ranks: loopRanks, run: loopRun(loopRanks, 64, false, false)},
		{name: "stencil+transpose loop", ranks: loopRanks, run: loopRun(loopRanks, 4096, true, false)},
		// The analytic variant is the one workload here the sharded
		// kernel accepts (contention fidelity falls back to serial), so
		// -shards N actually exercises the parallel kernel — and must
		// still print byte-identical tables at every N.
		{name: "stencil+allreduce (analytic)", ranks: loopRanks, run: loopRun(loopRanks, 64, false, true)},
	}
}

// profile runs each scenario once on BG/P with an attached recorder and
// reports two tables: the mean per-rank time decomposition (with the
// worst rank's wait share, the load-imbalance signal) and the
// critical-path attribution (which bucket, and which ranks, the
// end-to-end time actually passed through).
func profile(o Options) ([]*stats.Table, error) {
	scenarios := profileScenarios(o)
	var jobs []job
	for _, s := range scenarios {
		s := s
		jobs = append(jobs, job{
			run:    func() (any, error) { return s.run() },
			commit: func(v any) { s.rec = v.(*obs.Recorder) },
		})
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	t1 := stats.NewTable("Per-rank time decomposition on BG/P VN (mean over ranks; max wait = worst rank's total wait share)",
		"Workload", "Ranks", "Elapsed us", "Compute", "P2P wait", "Coll wait", "Other", "Max wait")
	t2 := stats.NewTable("Critical-path attribution (backward walk from the last-finishing rank)",
		"Workload", "Path us", "End rank", "Hops", "Compute", "P2P wait", "Coll wait", "Other", "Top rank")
	for _, s := range scenarios {
		p := s.rec.Profile()
		_, max, mean := profileSummary(p)
		t1.AddRow(s.name, fmt.Sprintf("%d", s.ranks),
			stats.FormatG(p.Elapsed().Microseconds()),
			profilePct(mean.Compute, mean.Total),
			profilePct(mean.P2PWait, mean.Total),
			profilePct(mean.CollWait, mean.Total),
			profilePct(mean.Other+mean.Noise, mean.Total),
			profilePct(max.P2PWait+max.CollWait, max.Total))

		cp := s.rec.CriticalPath()
		top := "-"
		if len(cp.ByRank) > 0 {
			top = fmt.Sprintf("%d (%s)", cp.ByRank[0].Rank, profilePct(cp.ByRank[0].Time, cp.Total))
		}
		t2.AddRow(s.name, stats.FormatG(cp.Total.Microseconds()),
			fmt.Sprintf("%d", cp.EndRank), fmt.Sprintf("%d", cp.Hops),
			profilePct(cp.Compute, cp.Total),
			profilePct(cp.P2PWait, cp.Total),
			profilePct(cp.CollWait, cp.Total),
			profilePct(cp.Other, cp.Total), top)
	}
	return []*stats.Table{t1, t2}, nil
}

// profileSummary re-exposes the field-wise min/max/mean rank profiles.
func profileSummary(p *obs.Profile) (min, max, mean obs.RankProfile) {
	if len(p.Ranks) == 0 {
		return
	}
	min, max = p.Ranks[0], p.Ranks[0]
	for _, r := range p.Ranks {
		mean.Total += r.Total
		mean.Compute += r.Compute
		mean.P2PWait += r.P2PWait
		mean.CollWait += r.CollWait
		mean.Noise += r.Noise
		mean.Other += r.Other
		if r.Total > max.Total {
			max = r
		}
		if r.Total < min.Total {
			min = r
		}
	}
	n := sim.Duration(len(p.Ranks))
	mean.Total /= n
	mean.Compute /= n
	mean.P2PWait /= n
	mean.CollWait /= n
	mean.Noise /= n
	mean.Other /= n
	return min, max, mean
}

// profilePct formats d as a percentage of total.
func profilePct(d, total sim.Duration) string {
	if total <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
}
