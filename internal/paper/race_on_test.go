//go:build race

package paper

// raceEnabled reports whether the race detector is compiled in. The
// sweep-heavy tests shrink or skip under -race: instrumentation is
// 5-10x slower, and the detector only needs the concurrent code paths
// exercised, not every experiment at full breadth (the non-race run
// covers that).
const raceEnabled = true
