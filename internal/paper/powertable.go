package paper

import (
	"fmt"

	"bgpsim/internal/apps/pop"
	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
	"bgpsim/internal/power"
	"bgpsim/internal/stats"
)

func init() {
	register("table3", "Power comparison (HPL and POP science throughput)", table3)
}

func table3(o Options) ([]*stats.Table, error) {
	type sys struct {
		id    machine.ID
		cores int
		nb    int
	}
	bgp := sys{machine.BGP, 8192, 96}
	xt := sys{machine.XT4QC, 30976, 168}
	sydNorm := 8192
	sydTarget := 12.0
	maxCores := 48000
	if !o.Full {
		// Reduced scale: smaller partitions and a modest throughput
		// target keep the experiment quick; the structure and the
		// qualitative conclusions are identical.
		bgp.cores = 2048
		xt.cores = 2048
		sydNorm = 1024
		sydTarget = 2.0
		maxCores = 12000
	}

	t := stats.NewTable(fmt.Sprintf("Table 3: Power comparison (SYD normalized at %d cores, target %.0f SYD)", sydNorm, sydTarget),
		"Metric", "BG/P", "XT/QC")
	row := func(name string, f func(sys) string) {
		t.AddRow(name, f(bgp), f(xt))
	}

	row("Cores", func(s sys) string { return fmt.Sprintf("%d", s.cores) })
	row("Measured power / HPL (kW)", func(s sys) string {
		return stats.FormatG(power.AggregateKW(machine.Get(s.id), s.cores, power.HPL))
	})
	row("Per core under HPL (W)", func(s sys) string {
		return stats.FormatG(power.PerCoreWatts(machine.Get(s.id), power.HPL))
	})
	row("Measured power / normal (kW)", func(s sys) string {
		return stats.FormatG(power.AggregateKW(machine.Get(s.id), s.cores, power.Science))
	})
	row("Per core normal (W)", func(s sys) string {
		return stats.FormatG(power.PerCoreWatts(machine.Get(s.id), power.Science))
	})
	row("Peak (TFlop/s)", func(s sys) string {
		return stats.FormatG(machine.Get(s.id).PeakFlopsCore() * float64(s.cores) / 1e12)
	})

	// HPL Rmax from the analytic model at ~80% memory.
	rmax := map[machine.ID]float64{}
	for _, s := range []sys{bgp, xt} {
		m := machine.Get(s.id)
		n := hpcc.ProblemSizeN(m, machine.VN, s.cores, 0.8)
		rmax[s.id] = hpcc.HPLAnalytic(s.id, machine.VN, s.cores, n, s.nb)
	}
	row("HPL Rmax (TFlop/s)", func(s sys) string { return stats.FormatG(rmax[s.id] / 1000) })
	row("HPL MFlops/s per W", func(s sys) string {
		return stats.FormatG(power.MFlopsPerWatt(machine.Get(s.id), s.cores, rmax[s.id]*1e9, power.HPL))
	})

	// POP science-driven metrics.
	models := map[machine.ID]func(int) float64{
		bgp.id: pop.SYDModel(bgp.id, machine.VN, pop.ChronopoulosGear),
		xt.id:  pop.SYDModel(xt.id, machine.VN, pop.ChronopoulosGear),
	}
	row(fmt.Sprintf("POP SYD @ %d cores", sydNorm), func(s sys) string {
		return stats.FormatG(models[s.id](sydNorm))
	})
	row(fmt.Sprintf("Power @ %d cores (kW)", sydNorm), func(s sys) string {
		return stats.FormatG(power.AggregateKW(machine.Get(s.id), sydNorm, power.Science))
	})

	ftRes := map[machine.ID]power.FixedThroughput{}
	for _, s := range []sys{bgp, xt} {
		ft, err := power.AtThroughput(machine.Get(s.id), sydTarget, 256, maxCores, models[s.id])
		if err != nil {
			return nil, err
		}
		ft.Cores = power.RoundCores(machine.Get(s.id), ft.Cores)
		ft.KW = power.AggregateKW(machine.Get(s.id), ft.Cores, power.Science)
		ftRes[s.id] = ft
	}
	row(fmt.Sprintf("Cores for %.0f SYD", sydTarget), func(s sys) string {
		return fmt.Sprintf("%d", ftRes[s.id].Cores)
	})
	row(fmt.Sprintf("Power for %.0f SYD (kW)", sydTarget), func(s sys) string {
		return stats.FormatG(ftRes[s.id].KW)
	})
	return []*stats.Table{t}, nil
}
