package paper

import (
	"strconv"
	"testing"
)

// facilityCell looks a cell up by alloc row and column name in the
// facility comparison table.
func facilityCell(t *testing.T, columns []string, rows [][]string, alloc, col string) string {
	t.Helper()
	ci := -1
	for i, c := range columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q not in %v", col, columns)
	}
	for _, row := range rows {
		if row[0] == alloc {
			return row[ci]
		}
	}
	t.Fatalf("no row for alloc %q", alloc)
	return ""
}

// TestFacilityContrast pins the facility experiment's load-bearing
// properties at reduced scale: the rack-level blast reaches at least
// two concurrent jobs under both allocators (the PR's acceptance
// scenario), BG-style prism allocation keeps every job's external-link
// share at zero while XT-style linear scans leak routes through other
// jobs' nodes, and BG pays for that isolation in internal
// fragmentation.
func TestFacilityContrast(t *testing.T) {
	e, err := Get("facility")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 4 {
		t.Fatalf("got %d tables, want comparison + 2 blast tables + job table", len(tables))
	}
	cmp := tables[0]
	if len(cmp.Rows) != 2 {
		t.Fatalf("comparison table has %d rows, want bg and xt", len(cmp.Rows))
	}
	cell := func(alloc, col string) string {
		return facilityCell(t, cmp.Columns, cmp.Rows, alloc, col)
	}
	num := func(alloc, col string) float64 {
		v, err := strconv.ParseFloat(cell(alloc, col), 64)
		if err != nil {
			t.Fatalf("cell (%s, %s) = %q: %v", alloc, col, cell(alloc, col), err)
		}
		return v
	}

	for _, al := range []string{"bg", "xt"} {
		if hit := num(al, "blast jobs hit"); hit < 2 {
			t.Errorf("alloc=%s: rack blast hit %v jobs, want >= 2 concurrent jobs", al, hit)
		}
		if u := num(al, "util"); u <= 0 || u > 1 {
			t.Errorf("alloc=%s: utilization %v outside (0, 1]", al, u)
		}
	}
	if ext := num("bg", "mean extshare"); ext != 0 {
		t.Errorf("bg mean extshare %v, want 0 (prisms are link-isolated)", ext)
	}
	if ext := num("xt", "mean extshare"); ext <= 0 {
		t.Errorf("xt mean extshare %v, want > 0 (linear scans share links)", ext)
	}
	if bg, xt := num("bg", "frag mean"), num("xt", "frag mean"); bg <= xt {
		t.Errorf("frag mean bg=%v xt=%v, want bg > xt (isolation costs fragmentation)", bg, xt)
	}
}
