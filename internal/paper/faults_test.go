package paper

import (
	"strconv"
	"strings"
	"testing"

	"bgpsim/internal/runner"
)

// TestFaultsDeterministic pins the fault experiment's seed contract:
// the rendered output is byte-identical across repeated runs and
// across worker counts, because every fault placement derives from the
// plan seed and results commit in job order.
func TestFaultsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault sweep three times")
	}
	defer runner.SetWorkers(0)
	runner.SetWorkers(1)
	serial := renderAll(t, "faults")
	runner.SetWorkers(8)
	parallel := renderAll(t, "faults")
	again := renderAll(t, "faults")
	if serial != parallel {
		t.Errorf("faults output differs between -j 1 and -j 8\n-- j1 --\n%s\n-- j8 --\n%s",
			serial, parallel)
	}
	if parallel != again {
		t.Error("faults output differs between repeated -j 8 runs")
	}
}

// TestFaultsTables spot-checks the experiment's structural claims
// without pinning every simulated value.
func TestFaultsTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault sweep")
	}
	e, err := Get("faults")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}

	// The healthy row of the link table is the baseline: slowdown 1.
	link := tables[0]
	if got := strings.TrimSpace(link.Rows[0][2]); got != "1" {
		t.Errorf("healthy torus slowdown = %q, want 1", got)
	}

	// BG/P's CNK is noiseless: the machine-noise column must equal the
	// quiet column exactly, while the XT rows must be slower.
	noise := tables[1]
	for _, row := range noise.Rows {
		quiet, noisy, factor := strings.TrimSpace(row[1]), strings.TrimSpace(row[2]), strings.TrimSpace(row[3])
		switch row[0] {
		case "BG/P":
			if quiet != noisy || factor != "1" {
				t.Errorf("BG/P noise row %v: CNK must be noiseless", row)
			}
		default:
			if factor == "1" {
				t.Errorf("%s noise factor = 1, want > 1", row[0])
			}
		}
	}

	// Unsurvivable faults surface as the documented typed errors.
	typed := tables[2]
	if !strings.Contains(typed.Rows[0][1], "*mpi.RankFailure") {
		t.Errorf("node-kill row %q does not name *mpi.RankFailure", typed.Rows[0][1])
	}
	if !strings.Contains(typed.Rows[1][1], "*topology.LinkDownError") {
		t.Errorf("partition row %q does not name *topology.LinkDownError", typed.Rows[1][1])
	}

	// Young/Daly rows must beat their off-optimum neighbours: the
	// sweep emits triples (0.25x, optimal, 4x) per system.
	ck := tables[3]
	tts := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSpace(row[3]), 64)
		if err != nil {
			t.Fatalf("bad TTS cell %q in row %v: %v", row[3], row, err)
		}
		return v
	}
	triples := 0
	for i := 0; i+2 < len(ck.Rows); i += 3 {
		if !strings.Contains(ck.Rows[i+1][1], "Young/Daly") {
			break
		}
		triples++
		under, opt, over := tts(ck.Rows[i]), tts(ck.Rows[i+1]), tts(ck.Rows[i+2])
		if opt >= under || opt >= over {
			t.Errorf("rows %d-%d: optimal TTS %g not below %g (0.25x) and %g (4x)",
				i, i+2, opt, under, over)
		}
	}
	if triples != 2 {
		t.Errorf("checkpoint table has %d interval triples, want 2", triples)
	}
}
