package paper

import (
	"strconv"
	"strings"
	"testing"

	"bgpsim/internal/runner"
)

// TestFaultsDeterministic pins the fault experiment's seed contract:
// the rendered output is byte-identical across repeated runs and
// across worker counts, because every fault placement derives from the
// plan seed and results commit in job order.
func TestFaultsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault sweep three times")
	}
	defer runner.SetWorkers(0)
	runner.SetWorkers(1)
	serial := renderAll(t, "faults")
	runner.SetWorkers(8)
	parallel := renderAll(t, "faults")
	again := renderAll(t, "faults")
	if serial != parallel {
		t.Errorf("faults output differs between -j 1 and -j 8\n-- j1 --\n%s\n-- j8 --\n%s",
			serial, parallel)
	}
	if parallel != again {
		t.Error("faults output differs between repeated -j 8 runs")
	}
}

// TestFaultsTables spot-checks the experiment's structural claims
// without pinning every simulated value.
func TestFaultsTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault sweep")
	}
	e, err := Get("faults")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 7 {
		t.Fatalf("got %d tables, want 7", len(tables))
	}

	// The healthy row of the link table is the baseline: slowdown 1.
	link := tables[0]
	if got := strings.TrimSpace(link.Rows[0][2]); got != "1" {
		t.Errorf("healthy torus slowdown = %q, want 1", got)
	}

	// BG/P's CNK is noiseless: the machine-noise column must equal the
	// quiet column exactly, while the XT rows must be slower.
	noise := tables[1]
	for _, row := range noise.Rows {
		quiet, noisy, factor := strings.TrimSpace(row[1]), strings.TrimSpace(row[2]), strings.TrimSpace(row[3])
		switch row[0] {
		case "BG/P":
			if quiet != noisy || factor != "1" {
				t.Errorf("BG/P noise row %v: CNK must be noiseless", row)
			}
		default:
			if factor == "1" {
				t.Errorf("%s noise factor = 1, want > 1", row[0])
			}
		}
	}

	// Unsurvivable faults surface as the documented typed errors.
	typed := tables[2]
	if !strings.Contains(typed.Rows[0][1], "*mpi.RankFailure") {
		t.Errorf("node-kill row %q does not name *mpi.RankFailure", typed.Rows[0][1])
	}
	if !strings.Contains(typed.Rows[1][1], "*topology.LinkDownError") {
		t.Errorf("partition row %q does not name *topology.LinkDownError", typed.Rows[1][1])
	}

	// Young/Daly rows must beat their off-optimum neighbours: the
	// sweep emits triples (0.25x, optimal, 4x) per system.
	ck := tables[3]
	tts := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSpace(row[3]), 64)
		if err != nil {
			t.Fatalf("bad TTS cell %q in row %v: %v", row[3], row, err)
		}
		return v
	}
	triples := 0
	for i := 0; i+2 < len(ck.Rows); i += 3 {
		if !strings.Contains(ck.Rows[i+1][1], "Young/Daly") {
			break
		}
		triples++
		under, opt, over := tts(ck.Rows[i]), tts(ck.Rows[i+1]), tts(ck.Rows[i+2])
		if opt >= under || opt >= over {
			t.Errorf("rows %d-%d: optimal TTS %g not below %g (0.25x) and %g (4x)",
				i, i+2, opt, under, over)
		}
	}
	if triples != 2 {
		t.Errorf("checkpoint table has %d interval triples, want 2", triples)
	}

	// Recovery table: healthy row charges nothing; a leaf death rebuilds
	// the hardware tree without demoting; an interior death demotes; the
	// card blast loses 32 ranks.
	rec := tables[4]
	cell := func(row []string, col int) string { return strings.TrimSpace(row[col]) }
	if got := cell(rec.Rows[0], 3); got != "0" {
		t.Errorf("healthy recovery row charged %s recoveries, want 0", got)
	}
	if got := cell(rec.Rows[1], 4); got == "0" {
		t.Error("leaf-death row rebuilt no trees")
	}
	if got := cell(rec.Rows[1], 5); got != "0" {
		t.Errorf("leaf-death row demoted HW offloads %s times, want 0", got)
	}
	if got := cell(rec.Rows[2], 5); got == "0" {
		t.Error("interior-death row demoted no HW offloads")
	}
	if got := cell(rec.Rows[3], 2); got != "32" {
		t.Errorf("card-blast row lost %s ranks, want 32", got)
	}

	// Differential checkpoint table: the simulated runs track the Daly
	// expectation (ratio column within [0.8, 1.8] — the simulated writes
	// are store-and-forward and few seeds leave sampling noise).
	diff := tables[5]
	for _, row := range diff.Rows {
		ratio, err := strconv.ParseFloat(cell(row, 4), 64)
		if err != nil {
			t.Fatalf("bad ratio cell in row %v: %v", row, err)
		}
		if ratio < 0.8 || ratio > 1.8 {
			t.Errorf("row %v: simulated/Daly ratio %g outside [0.8, 1.8]", row, ratio)
		}
	}

	// Replay table: healthy loses nobody; orphan cancellation loses the
	// victim and exactly one partner (with orphans counted); user-level
	// restart loses nobody, replays logged bytes, and charges time.
	rp := tables[6]
	if got := cell(rp.Rows[0], 2) + cell(rp.Rows[0], 3) + cell(rp.Rows[0], 4); got != "000" {
		t.Errorf("healthy replay row has losses/orphans: %v", rp.Rows[0])
	}
	if cell(rp.Rows[1], 2) != "1" || cell(rp.Rows[1], 3) != "1" {
		t.Errorf("cancel row %v: want 1 lost rank and 1 peer-lost partner", rp.Rows[1])
	}
	if cell(rp.Rows[1], 4) == "0" {
		t.Errorf("cancel row %v: no orphans recorded", rp.Rows[1])
	}
	if cell(rp.Rows[2], 2) != "0" || cell(rp.Rows[2], 3) != "0" {
		t.Errorf("restart row %v: user-level restart must lose nobody", rp.Rows[2])
	}
	if cell(rp.Rows[2], 5) != "1" || cell(rp.Rows[2], 7) == "0" || cell(rp.Rows[2], 8) == "0" {
		t.Errorf("restart row %v: want 1 restart with replayed bytes and charged time", rp.Rows[2])
	}
}
