package paper

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablations", "calib", "colltune", "facility", "faults", "fig1", "fig2", "fig3",
		"fig4", "fig5", "fig6", "fig7", "fig8", "green500", "io", "petaflop", "profile",
		"table1", "table2", "table3", "top500"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig99"); err == nil {
		t.Error("expected error")
	}
	e, err := Get("table1")
	if err != nil || e.ID != "table1" {
		t.Errorf("Get(table1) = %+v, %v", e, err)
	}
}

func TestGreen500BlueGenesOnTop(t *testing.T) {
	e, err := Get("green500")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("expected 5 systems, got %d", len(rows))
	}
	// The paper's intro: the BlueGene family owns the top of the
	// Green500. Ranks 1-2 must be the two BlueGenes.
	top := rows[0][1] + " " + rows[1][1]
	if !(strings.Contains(top, "BG/P") && strings.Contains(top, "BG/L")) {
		t.Errorf("top two = %q, want the BlueGenes", top)
	}
}

func TestAllExperimentsRunReduced(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				s := tb.String()
				if len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				if !strings.Contains(s, "-") {
					t.Errorf("%s: suspicious render", e.ID)
				}
			}
		})
	}
}

func TestAllClaimsVerify(t *testing.T) {
	if raceEnabled {
		t.Skip("claim sweep is minutes-long under -race; the non-race run covers it and TestAllExperimentsRunReduced covers the concurrent paths")
	}
	for _, r := range VerifyClaims(Options{}) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Claim.ID, r.Err)
		} else if !r.Pass {
			t.Errorf("%s failed: %s", r.Claim.ID, r.Detail)
		}
	}
}
