package paper

import (
	"strings"
	"testing"
)

// TestTable1Golden pins the Table 1 values: the machine catalog's
// headline numbers are the paper's Table 1 values, and any accidental
// catalog change should fail loudly here. Cells are compared
// field-wise so column alignment may change freely.
func TestTable1Golden(t *testing.T) {
	e, err := Get("table1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"Cores per node":       {"2", "4", "2", "2", "4"},
		"Core clock (MHz)":     {"700", "850", "2600", "2600", "2100"},
		"Cache coherence":      {"Software", "Hardware", "Hardware", "Hardware", "Hardware"},
		"L1 / core (KB)":       {"32", "32", "64", "64", "64"},
		"L2 / core (KB)":       {"prefetch", "prefetch", "1024", "1024", "512"},
		"Memory BW (GB/s)":     {"5.6", "13.6", "6.4", "10.6", "10.6"},
		"Peak (GF/s per node)": {"5.6", "13.6", "10.4", "10.4", "33.6"},
		"Tree BW (MB/s)":       {"350", "850", "n/a", "n/a", "n/a"},
		"Cores per rack":       {"2048", "4096", "192", "192", "384"},
	}
	tb := tables[0]
	byFeature := map[string][]string{}
	for _, row := range tb.Rows {
		byFeature[row[0]] = row[1:]
	}
	for feature, cells := range want {
		got, ok := byFeature[feature]
		if !ok {
			t.Errorf("table 1 missing row %q", feature)
			continue
		}
		for i, w := range cells {
			if strings.TrimSpace(got[i]) != w {
				t.Errorf("table 1 %q[%d] = %q, want %q", feature, i, got[i], w)
			}
		}
	}
}

// TestFigureTablesCarryCharts checks that figure-derived tables come
// with their sparkline charts attached.
func TestFigureTablesCarryCharts(t *testing.T) {
	e, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.Chart == "" {
			t.Errorf("figure table %q has no chart", tb.Title)
		}
	}
}
