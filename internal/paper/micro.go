package paper

import (
	"fmt"

	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
	"bgpsim/internal/power"
	"bgpsim/internal/runner"
	"bgpsim/internal/stats"
)

func init() {
	register("table1", "System configuration summary", table1)
	register("table2", "HPCC single-process, EP and communication tests", table2)
	register("fig1", "HPCC parallel tests scaling (HPL, FFT, PTRANS, RandomAccess)", fig1)
	register("top500", "TOP500 HPL run and Green500 power efficiency", top500)
}

func table1(Options) ([]*stats.Table, error) {
	t := stats.NewTable("Table 1: System Configuration Summary",
		"Feature", "BG/L", "BG/P", "XT3", "XT4/DC", "XT4/QC")
	row := func(name string, f func(*machine.Machine) string) {
		cells := []string{name}
		for _, id := range machine.All() {
			cells = append(cells, f(machine.Get(id)))
		}
		t.AddRow(cells...)
	}
	row("Cores per node", func(m *machine.Machine) string { return fmt.Sprintf("%d", m.CoresPerNode) })
	row("Core clock (MHz)", func(m *machine.Machine) string { return fmt.Sprintf("%.0f", m.ClockHz/1e6) })
	row("Cache coherence", func(m *machine.Machine) string {
		if m.CacheCoherent {
			return "Hardware"
		}
		return "Software"
	})
	row("L1 / core (KB)", func(m *machine.Machine) string { return fmt.Sprintf("%d", m.L1Bytes>>10) })
	row("L2 / core (KB)", func(m *machine.Machine) string {
		if m.L2Bytes == 0 {
			return "prefetch"
		}
		return fmt.Sprintf("%d", m.L2Bytes>>10)
	})
	row("L3 shared (MB)", func(m *machine.Machine) string {
		if m.L3Bytes == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%d", m.L3Bytes>>20)
	})
	row("Memory / node (GB)", func(m *machine.Machine) string {
		return fmt.Sprintf("%.1f", float64(m.MemPerNode)/float64(1<<30))
	})
	row("Memory BW (GB/s)", func(m *machine.Machine) string { return fmt.Sprintf("%.1f", m.MemBWPerNode/1e9) })
	row("Peak (GF/s per node)", func(m *machine.Machine) string { return fmt.Sprintf("%.1f", m.PeakFlopsNode()/1e9) })
	row("Torus injection (GB/s)", func(m *machine.Machine) string { return fmt.Sprintf("%.2f", m.NICInjectBW/1e9) })
	row("Tree BW (MB/s)", func(m *machine.Machine) string {
		if !m.HasTree {
			return "n/a"
		}
		return fmt.Sprintf("%.0f", m.TreeBW/1e6)
	})
	row("Cores per rack", func(m *machine.Machine) string { return fmt.Sprintf("%d", m.CoresPerRack) })
	return []*stats.Table{t}, nil
}

func table2(o Options) ([]*stats.Table, error) {
	ranks := 256
	if o.Full {
		ranks = 4096
	}
	// The two machines' HPCC suites are independent simulations.
	eps, err := runner.Sweep([]machine.ID{machine.BGP, machine.XT4QC},
		func(id machine.ID) (*hpcc.EPResults, error) { return hpcc.SingleAndEP(id, ranks) })
	if err != nil {
		return nil, err
	}
	bgp, xt := eps[0], eps[1]
	t := stats.NewTable(
		fmt.Sprintf("Table 2: HPCC SP/EP and communication tests (VN mode, %d processes)", ranks),
		"Test", "BG/P", "XT4/QC")
	add := func(name string, a, b float64) {
		t.AddRow(name, stats.FormatG(a), stats.FormatG(b))
	}
	add("DGEMM (GFlop/s per process)", bgp.DGEMMGF, xt.DGEMMGF)
	add("STREAM triad SP (GB/s)", bgp.StreamSPGB, xt.StreamSPGB)
	add("STREAM triad EP (GB/s per process)", bgp.StreamEPGB, xt.StreamEPGB)
	add("FFT EP (GFlop/s per process)", bgp.FFTEPGF, xt.FFTEPGF)
	add("Ping-pong latency (us)", bgp.PingPongLatUS, xt.PingPongLatUS)
	add("Ping-pong bandwidth (GB/s)", bgp.PingPongBWGBs, xt.PingPongBWGBs)
	add("Random ring latency (us)", bgp.RandRingLatUS, xt.RandRingLatUS)
	add("Random ring bandwidth (GB/s per process)", bgp.RandRingBWGBs, xt.RandRingBWGBs)
	return []*stats.Table{t}, nil
}

// fig1Procs returns the process-count sweep.
func fig1Procs(o Options) []int {
	if o.Full {
		return []int{256, 512, 1024, 2048, 4096, 8192}
	}
	return []int{64, 256, 1024}
}

func fig1(o Options) ([]*stats.Table, error) {
	procs := fig1Procs(o)
	machines := []machine.ID{machine.BGP, machine.XT4QC}

	hpl := stats.NewFigure("Figure 1(a): HPCC HPL", "processes", "TFlop/s")
	fft := stats.NewFigure("Figure 1(b): HPCC FFT", "processes", "GFlop/s")
	ptr := stats.NewFigure("Figure 1(c): HPCC PTRANS", "processes", "GB/s")
	ra := stats.NewFigure("Figure 1(d): HPCC RandomAccess", "processes", "GUPS")
	for _, id := range machines {
		m := machine.Get(id)
		sh := hpl.AddSeries(string(id))
		sf := fft.AddSeries(string(id))
		sp := ptr.AddSeries(string(id))
		sr := ra.AddSeries(string(id))
		for _, p := range procs {
			n := hpcc.ProblemSizeN(m, machine.VN, p, 0.8)
			sh.Add(float64(p), hpcc.HPLAnalytic(id, machine.VN, p, n, hpcc.BlockingNB(id))/1000)
			sf.Add(float64(p), hpcc.FFTAnalytic(id, machine.VN, p))
			sp.Add(float64(p), hpcc.PTRANSAnalytic(id, machine.VN, p))
			sr.Add(float64(p), hpcc.RandomAccessGUPS(id, machine.VN, p))
		}
	}
	return []*stats.Table{hpl.Table(), fft.Table(), ptr.Table(), ra.Table()}, nil
}

func top500(o Options) ([]*stats.Table, error) {
	// Paper §II.C: N=614399, NB=96, 64x128 grid on the ORNL BG/P
	// (8192 cores); 2.14e4 GFlop/s, 310.93 MFlops/W.
	const n, nb, cores = 614399, 96, 8192
	gf := hpcc.HPLAnalytic(machine.BGP, machine.VN, cores, n, nb)
	m := machine.Get(machine.BGP)
	mfw := power.MFlopsPerWatt(m, cores, gf*1e9, power.HPL)
	t := stats.NewTable("TOP500 HPL on ORNL BG/P (N=614399, NB=96, 64x128 grid)",
		"Metric", "Simulated", "Paper")
	t.AddRow("HPL performance (GFlop/s)", stats.FormatG(gf), "21400")
	t.AddRow("Fraction of peak", stats.FormatG(gf*1e9/(m.PeakFlopsCore()*cores)), "0.768")
	t.AddRow("Power efficiency (MFlops/W)", stats.FormatG(mfw), "310.93")
	return []*stats.Table{t}, nil
}
