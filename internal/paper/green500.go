package paper

import (
	"sort"

	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
	"bgpsim/internal/power"
	"bgpsim/internal/stats"
)

func init() {
	register("green500", "Supplementary: Green500-style power-efficiency ranking (paper intro)", green500)
}

// green500 ranks the catalog machines by HPL MFlops/W — the paper's
// introduction notes that BG/P and BG/L owned the top 26 spots of the
// Green500 list; in our catalog the two BlueGenes must outrank every
// Cray XT configuration.
func green500(o Options) ([]*stats.Table, error) {
	cores := 1024
	if o.Full {
		cores = 8192
	}
	type entry struct {
		id   machine.ID
		rmax float64
		mfw  float64
	}
	var entries []entry
	for _, id := range machine.All() {
		m := machine.Get(id)
		c := power.RoundCores(m, cores)
		n := hpcc.ProblemSizeN(m, machine.VN, c, 0.8)
		rmax := hpcc.HPLAnalytic(id, machine.VN, c, n, hpcc.BlockingNB(id))
		entries = append(entries, entry{
			id:   id,
			rmax: rmax,
			mfw:  power.MFlopsPerWatt(m, c, rmax*1e9, power.HPL),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mfw > entries[j].mfw })

	t := stats.NewTable("Green500-style ranking (HPL at equal core counts)",
		"Rank", "System", "HPL Rmax (GF)", "MFlops/W")
	for i, e := range entries {
		t.AddRow(stats.FormatG(float64(i+1)), string(e.id),
			stats.FormatG(e.rmax), stats.FormatG(e.mfw))
	}
	return []*stats.Table{t}, nil
}
