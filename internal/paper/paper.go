// Package paper is the reproduction harness: one experiment per table
// and figure of "Early Evaluation of IBM BlueGene/P" (SC'08), each
// regenerating the corresponding rows or series from the simulator.
//
// Experiments run at two scales: the default reduced scale keeps every
// experiment tractable on a laptop, while Full uses the paper's actual
// process counts and problem sizes (minutes of wall time for the
// largest sweeps). The shapes — who wins, by what factor, where the
// crossovers fall — hold at both scales.
package paper

import (
	"fmt"
	"sort"

	"bgpsim/internal/stats"
)

// Options controls experiment scale.
type Options struct {
	// Full runs at the paper's process counts and sizes.
	Full bool

	// Shards, when >= 1, asks shard-eligible workloads (analytic
	// fidelity, no link faults) to run on the conservative parallel
	// kernel with that many domains. Output is byte-identical at any
	// value — ineligible workloads fall back to the serial kernel at
	// every count, and eligible ones produce the same canonical event
	// order regardless of the count.
	Shards int
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // e.g. "table2", "fig4"
	Title string
	Run   func(Options) ([]*stats.Table, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Options) ([]*stats.Table, error)) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("paper: duplicate experiment %q", id))
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("paper: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists the registered experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every experiment in id order.
func All() []Experiment {
	var out []Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
