package paper

import (
	"fmt"

	"bgpsim/internal/calib"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/stats"
)

func init() {
	register("calib", "Supplementary: calibration fit and variability confidence intervals (docs/CALIBRATION.md)", calibration)
}

// calibVar is the variability model of the CI tables: 2% per-node
// clock spread and 5% per-node link-bandwidth spread, redrawn per
// sweep seed.
func calibVar(seed uint64) fault.Variability {
	return fault.Variability{Seed: seed, ClockCV: 0.02, LinkCV: 0.05}
}

// calibration runs the calibration-and-variability report: first the
// seeded parameter fit of each machine model back to the paper's
// tables (parameter trajectory + residuals), then two headline
// micro-benchmark tables re-emitted with common-random-numbers 95%
// confidence intervals under per-node performance variability.
func calibration(o Options) ([]*stats.Table, error) {
	ids := calib.Machines()

	// The per-machine fits are independent; sweep them on the pool.
	fits := make([]*calib.FitResult, len(ids))
	var jobs []job
	for i, id := range ids {
		i, id := i, id
		jobs = append(jobs, job{
			run: func() (any, error) {
				return calib.Fit(id, calib.DefaultFitOptions())
			},
			commit: func(v any) { fits[i] = v.(*calib.FitResult) },
		})
	}

	// CI sweeps: rerun the ping-pong pair and the halo-exchange proxy
	// under seeded variability draws, same seed list for every machine
	// and metric (common random numbers).
	nSeeds := 5
	if o.Full {
		nSeeds = 10
	}
	seeds := make([]uint64, nSeeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	type ciRow struct {
		healthy   [3]float64
		summaries [3]*stats.Summary
	}
	varPlan := func(seed uint64) (*fault.Plan, error) {
		p := fault.NewPlan(seed)
		if err := p.SetVariability(calibVar(seed)); err != nil {
			return nil, err
		}
		return p, nil
	}
	ciOne := func(id machine.ID) (ciRow, error) {
		var row ciRow
		m := machine.Get(id)
		lat0, bw0, err := calib.PingPong(m, nil, o.Shards)
		if err != nil {
			return row, err
		}
		halo0, err := calib.HaloExchange(m, nil, o.Shards)
		if err != nil {
			return row, err
		}
		row.healthy = [3]float64{lat0, bw0, halo0}
		var lats, bws []float64
		for _, seed := range seeds {
			p, err := varPlan(seed)
			if err != nil {
				return row, err
			}
			lat, bw, err := calib.PingPong(m, p, o.Shards)
			if err != nil {
				return row, err
			}
			lats, bws = append(lats, lat), append(bws, bw)
		}
		haloSum, err := stats.CRNSweep(seeds, func(seed uint64) (float64, error) {
			p, err := varPlan(seed)
			if err != nil {
				return 0, err
			}
			return calib.HaloExchange(m, p, o.Shards)
		})
		if err != nil {
			return row, err
		}
		row.summaries = [3]*stats.Summary{stats.Summarize(lats), stats.Summarize(bws), haloSum}
		return row, nil
	}
	rows := make([]ciRow, len(ids))
	for i, id := range ids {
		i, id := i, id
		jobs = append(jobs, job{
			run:    func() (any, error) { return ciOne(id) },
			commit: func(v any) { rows[i] = v.(ciRow) },
		})
	}
	if err := runJobs(jobs); err != nil {
		return nil, err
	}

	var tables []*stats.Table
	for _, f := range fits {
		tables = append(tables, f.ParamTable(), f.ResidualTable())
	}

	metrics := []struct {
		name, unit string
	}{
		{"ping-pong latency", "us"},
		{"ping-pong bandwidth", "GB/s"},
		{"halo exchange", "ms"},
	}
	ciTitle := fmt.Sprintf("under per-node variability (clock:2%%,link:5%%, %d seeds, 95%% CI)", nSeeds)
	micro := stats.NewTable("Communication micro-benchmarks "+ciTitle,
		"Machine", "Metric", "Healthy", "With variability", "Shift %")
	app := stats.NewTable("Application proxy "+ciTitle,
		"Machine", "Metric", "Healthy", "With variability", "Shift %")
	for i, id := range ids {
		for k, mt := range metrics {
			tb := micro
			if mt.name == "halo exchange" {
				tb = app
			}
			s := rows[i].summaries[k]
			h := rows[i].healthy[k]
			tb.AddRow(string(id), fmt.Sprintf("%s (%s)", mt.name, mt.unit),
				stats.FormatG(h), s.FormatCI(),
				fmt.Sprintf("%+.2f", 100*(s.Mean-h)/h))
		}
	}
	return append(tables, micro, app), nil
}
