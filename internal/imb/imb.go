// Package imb implements the Intel MPI Benchmarks tests the paper uses
// in Figure 3: the latency of MPI_Allreduce and MPI_Bcast as functions
// of message size and process count, including the single- versus
// double-precision operand distinction that exposes the BlueGene/P
// collective tree's hardware reduction.
package imb

import (
	"bgpsim/internal/core"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
)

// analyticThreshold is the rank count above which collectives use the
// closed-form model instead of message-level simulation (keeps large
// sweeps tractable; the two agree in shape by construction).
const analyticThreshold = 16384

func config(id machine.ID, ranks int) mpi.Config {
	cfg := core.PartitionConfig(id, machine.VN, ranks)
	cfg.Fidelity = network.Contention
	cfg.AnalyticCollectives = ranks > analyticThreshold
	return cfg
}

// AllreduceLatency returns the latency of one MPI_Allreduce of the
// given payload on `ranks` processes in VN mode.
func AllreduceLatency(id machine.ID, ranks, bytes int, doublePrecision bool) (sim.Duration, error) {
	res, err := mpi.Execute(config(id, ranks), func(r *mpi.Rank) {
		r.World().Allreduce(r, bytes, doublePrecision)
	})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// BcastLatency returns the latency of one MPI_Bcast from rank 0.
func BcastLatency(id machine.ID, ranks, bytes int) (sim.Duration, error) {
	res, err := mpi.Execute(config(id, ranks), func(r *mpi.Rank) {
		r.World().Bcast(r, 0, bytes)
	})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// MessageSizes returns the IMB size sweep (powers of two up to max).
func MessageSizes(max int) []int {
	var out []int
	for s := 4; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// AllreduceVsSize builds Figure 3(a): latency versus payload at a
// fixed process count, for the machines and precisions given.
func AllreduceVsSize(ranks, maxBytes int) (*stats.Figure, error) {
	f := stats.NewFigure("IMB Allreduce latency vs message size", "bytes", "latency (us)")
	type variant struct {
		name   string
		id     machine.ID
		double bool
	}
	for _, v := range []variant{
		{"BG/P double", machine.BGP, true},
		{"BG/P float", machine.BGP, false},
		{"XT4/QC double", machine.XT4QC, true},
		{"XT4/QC float", machine.XT4QC, false},
	} {
		s := f.AddSeries(v.name)
		for _, b := range MessageSizes(maxBytes) {
			d, err := AllreduceLatency(v.id, ranks, b, v.double)
			if err != nil {
				return nil, err
			}
			s.Add(float64(b), d.Microseconds())
		}
	}
	return f, nil
}

// AllreduceVsProcs builds Figure 3(b): latency of a 32 KB Allreduce
// versus process count.
func AllreduceVsProcs(procCounts []int) (*stats.Figure, error) {
	f := stats.NewFigure("IMB Allreduce latency vs process count (32KB)", "processes", "latency (us)")
	const bytes = 32 << 10
	type variant struct {
		name   string
		id     machine.ID
		double bool
	}
	for _, v := range []variant{
		{"BG/P double", machine.BGP, true},
		{"BG/P float", machine.BGP, false},
		{"XT4/QC double", machine.XT4QC, true},
	} {
		s := f.AddSeries(v.name)
		for _, p := range procCounts {
			d, err := AllreduceLatency(v.id, p, bytes, v.double)
			if err != nil {
				return nil, err
			}
			s.Add(float64(p), d.Microseconds())
		}
	}
	return f, nil
}

// BcastVsSize builds Figure 3(c).
func BcastVsSize(ranks, maxBytes int) (*stats.Figure, error) {
	f := stats.NewFigure("IMB Bcast latency vs message size", "bytes", "latency (us)")
	for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
		s := f.AddSeries(string(id))
		for _, b := range MessageSizes(maxBytes) {
			d, err := BcastLatency(id, ranks, b)
			if err != nil {
				return nil, err
			}
			s.Add(float64(b), d.Microseconds())
		}
	}
	return f, nil
}

// BcastVsProcs builds Figure 3(d): 32 KB Bcast latency versus process
// count.
func BcastVsProcs(procCounts []int) (*stats.Figure, error) {
	f := stats.NewFigure("IMB Bcast latency vs process count (32KB)", "processes", "latency (us)")
	const bytes = 32 << 10
	for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
		s := f.AddSeries(string(id))
		for _, p := range procCounts {
			d, err := BcastLatency(id, p, bytes)
			if err != nil {
				return nil, err
			}
			s.Add(float64(p), d.Microseconds())
		}
	}
	return f, nil
}
