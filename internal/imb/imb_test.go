package imb

import (
	"testing"

	"bgpsim/internal/machine"
)

func TestAllreduceDoubleBeatsFloatOnBGP(t *testing.T) {
	// Figure 3(a): substantial benefit to double precision on BG/P.
	d, err := AllreduceLatency(machine.BGP, 256, 32<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := AllreduceLatency(machine.BGP, 256, 32<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := s.Seconds() / d.Seconds(); ratio < 1.5 {
		t.Errorf("float/double latency ratio = %.2f, want > 1.5 (paper: substantial)", ratio)
	}
}

func TestAllreduceNoPrecisionEffectOnXT(t *testing.T) {
	d, err := AllreduceLatency(machine.XT4QC, 128, 32<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := AllreduceLatency(machine.XT4QC, 128, 32<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	if d != s {
		t.Errorf("XT allreduce depends on precision: %v vs %v", d, s)
	}
}

func TestBcastBGPBeatsXTAtAllSizes(t *testing.T) {
	// Figure 3(c): "the BG/P dramatically outperforms the Cray XT for
	// all message sizes".
	for _, bytes := range []int{8, 1024, 32 << 10, 1 << 20} {
		b, err := BcastLatency(machine.BGP, 512, bytes)
		if err != nil {
			t.Fatal(err)
		}
		x, err := BcastLatency(machine.XT4QC, 512, bytes)
		if err != nil {
			t.Fatal(err)
		}
		if b >= x {
			t.Errorf("bytes=%d: BG/P bcast %v should beat XT %v", bytes, b, x)
		}
	}
}

func TestBcastScalesWellOnBGP(t *testing.T) {
	// Tree broadcast latency is nearly flat in process count.
	small, err := BcastLatency(machine.BGP, 64, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BcastLatency(machine.BGP, 2048, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := big.Seconds() / small.Seconds(); ratio > 1.5 {
		t.Errorf("BG/P bcast grew %.2fx from 64 to 2048 procs, want ~flat", ratio)
	}
}

func TestMessageSizes(t *testing.T) {
	sizes := MessageSizes(64)
	want := []int{4, 8, 16, 32, 64}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestFigureBuilders(t *testing.T) {
	f, err := AllreduceVsSize(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Errorf("allreduce figure has %d series", len(f.Series))
	}
	f2, err := BcastVsSize(64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Series) != 2 {
		t.Errorf("bcast figure has %d series", len(f2.Series))
	}
	f3, err := AllreduceVsProcs([]int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Series[0].X) != 2 {
		t.Errorf("allreduce-vs-procs points = %d", len(f3.Series[0].X))
	}
	f4, err := BcastVsProcs([]int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Series) != 2 {
		t.Errorf("bcast-vs-procs series = %d", len(f4.Series))
	}
}

func TestAnalyticThresholdSwitch(t *testing.T) {
	cfg := config(machine.XT4QC, analyticThreshold+4)
	if !cfg.AnalyticCollectives {
		t.Error("large runs should use analytic collectives")
	}
	cfg = config(machine.XT4QC, 64)
	if cfg.AnalyticCollectives {
		t.Error("small runs should simulate collectives")
	}
}
