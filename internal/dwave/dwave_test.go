package dwave

import (
	"testing"

	"bgpsim/internal/machine"
)

func cfg(procs int) Config {
	return Config{
		Machine: machine.BGP, Mode: machine.VN,
		Procs: procs, N: 256, L: 1, C: 1, Sigma: 0.05,
		Steps: 40, DT: 0.4 / 256,
	}
}

func TestDistributedWaveMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := Run(cfg(procs))
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		// The distributed integration must be bit-close to the serial
		// one: identical arithmetic, just distributed.
		if res.MaxError > 1e-12 {
			t.Errorf("procs=%d: max deviation from serial %g", procs, res.MaxError)
		}
		if res.VirtualSeconds <= 0 {
			t.Errorf("procs=%d: no virtual time", procs)
		}
	}
}

func TestDistributedWaveScales(t *testing.T) {
	c1 := cfg(1)
	c8 := cfg(8)
	c1.N, c8.N = 4096, 4096
	c1.DT, c8.DT = 0.4/4096, 0.4/4096
	c1.Steps, c8.Steps = 5, 5
	one, err := Run(c1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(c8)
	if err != nil {
		t.Fatal(err)
	}
	if eight.VirtualSeconds >= one.VirtualSeconds {
		t.Errorf("8 ranks (%gs) should beat 1 rank (%gs)", eight.VirtualSeconds, one.VirtualSeconds)
	}
}

func TestValidation(t *testing.T) {
	c := cfg(3)
	if _, err := Run(c); err == nil {
		t.Error("3 ranks do not divide 256 points")
	}
	c = cfg(128) // 2-point chunks < 4-point halo
	if _, err := Run(c); err == nil {
		t.Error("chunks smaller than the halo should fail")
	}
}
