// Package dwave is the distributed version of the S3D pressure-wave
// kernel running ON the simulator with real data: the periodic 1-D
// acoustics domain is split into contiguous chunks, every Runge-Kutta
// stage exchanges four-point ghost zones as message payloads (the
// eighth-order stencil's halo, exactly S3D's communication structure),
// and the result is verified point-wise against the serial
// kernels.AcousticWave solver.
package dwave

import (
	"fmt"

	"bgpsim/internal/core"
	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
)

// ghost is the stencil half-width of the eighth-order derivative.
const ghost = 4

// Config describes a distributed wave run.
type Config struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	N       int     // global grid points (must divide by Procs)
	L       float64 // domain length
	C       float64 // sound speed
	Sigma   float64 // initial Gaussian pulse width
	Steps   int
	DT      float64
}

// Result reports the run.
type Result struct {
	VirtualSeconds float64
	// P is the final global pressure field (gathered at rank 0).
	P []float64
	// MaxError is the maximum deviation from the serial solver run
	// with identical parameters.
	MaxError float64
}

// field is one rank's chunk with ghost cells: idx 0..ghost-1 left
// halo, ghost..ghost+local-1 interior, then right halo.
type field struct {
	local int
	v     []float64
}

func newField(local int) *field {
	return &field{local: local, v: make([]float64, local+2*ghost)}
}

// interior returns the owned points.
func (f *field) interior() []float64 { return f.v[ghost : ghost+f.local] }

// deriv8Local computes the eighth-order derivative of f into out over
// the interior, using the (filled) ghost cells.
func deriv8Local(out []float64, f *field, dx float64) {
	d8 := [4]float64{4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0}
	for i := 0; i < f.local; i++ {
		c := ghost + i
		s := 0.0
		for k := 1; k <= ghost; k++ {
			s += d8[k-1] * (f.v[c+k] - f.v[c-k])
		}
		out[i] = s / dx
	}
}

// exchangeGhosts fills the halo cells of f from the ring neighbours
// with payload-carrying messages.
func exchangeGhosts(r *mpi.Rank, f *field, tag int) {
	p := r.Size()
	if p == 1 {
		// Periodic wrap within the single chunk.
		for k := 0; k < ghost; k++ {
			f.v[k] = f.v[f.local+k]             // left halo = right edge
			f.v[ghost+f.local+k] = f.v[ghost+k] // right halo = left edge
		}
		return
	}
	me := r.ID()
	left := (me - 1 + p) % p
	right := (me + 1) % p
	leftEdge := append([]float64(nil), f.interior()[:ghost]...)
	rightEdge := append([]float64(nil), f.interior()[f.local-ghost:]...)
	s1 := r.IsendPayload(left, ghost*8, tag, leftEdge)
	s2 := r.IsendPayload(right, ghost*8, tag+1, rightEdge)
	_, fromRight := r.RecvPayload(right, tag) // right neighbour's left edge
	copy(f.v[ghost+f.local:], fromRight.([]float64))
	_, fromLeft := r.RecvPayload(left, tag+1) // left neighbour's right edge
	copy(f.v[:ghost], fromLeft.([]float64))
	r.Waitall(s1, s2)
}

// Run advances the distributed wave and verifies against the serial
// kernel.
func Run(cfg Config) (*Result, error) {
	if cfg.Procs <= 0 || cfg.N <= 0 || cfg.N%cfg.Procs != 0 {
		return nil, fmt.Errorf("dwave: %d ranks must divide %d points", cfg.Procs, cfg.N)
	}
	local := cfg.N / cfg.Procs
	if local < ghost {
		return nil, fmt.Errorf("dwave: chunk of %d points is smaller than the %d-point halo", local, ghost)
	}
	dx := cfg.L / float64(cfg.N)

	mcfg := core.PartitionConfig(cfg.Machine, cfg.Mode, cfg.Procs)
	var out Result
	res, err := mpi.Execute(mcfg, func(r *mpi.Rank) {
		me := r.ID()
		pf := newField(local)
		uf := newField(local)
		// Initial condition: the serial solver's Gaussian pulse.
		ref := kernels.NewAcousticWave(cfg.N, cfg.L, cfg.C, cfg.Sigma)
		copy(pf.interior(), ref.P[me*local:(me+1)*local])

		dp := make([]float64, local)
		du := make([]float64, local)
		scratch := make([]float64, local)
		tag := 0
		for step := 0; step < cfg.Steps; step++ {
			for s := 0; s < kernels.RKStages; s++ {
				exchangeGhosts(r, uf, 10+tag)
				tag += 2
				deriv8Local(scratch, uf, dx)
				for i := 0; i < local; i++ {
					dp[i] = rkA(s)*dp[i] - cfg.C*scratch[i]*cfg.DT
				}
				exchangeGhosts(r, pf, 10+tag)
				tag += 2
				deriv8Local(scratch, pf, dx)
				for i := 0; i < local; i++ {
					du[i] = rkA(s)*du[i] - cfg.C*scratch[i]*cfg.DT
				}
				pi := pf.interior()
				ui := uf.interior()
				for i := 0; i < local; i++ {
					pi[i] += rkB(s) * dp[i]
					ui[i] += rkB(s) * du[i]
				}
				// The stencil + updates: ~33 flops/point/stage.
				r.Compute(float64(local)*kernels.WaveFlopsPerPointStep()/kernels.RKStages,
					float64(local)*8*6, machine.ClassStencil)
			}
		}

		// Gather the pressure field for verification.
		gathered := r.World().GatherPayload(r, 0, local*8, append([]float64(nil), pf.interior()...))
		if me == 0 {
			full := make([]float64, 0, cfg.N)
			for _, chunk := range gathered {
				full = append(full, chunk.([]float64)...)
			}
			out.P = full
		}
	})
	if err != nil {
		return nil, err
	}
	out.VirtualSeconds = res.Elapsed.Seconds()

	// Serial reference with identical parameters.
	ref := kernels.NewAcousticWave(cfg.N, cfg.L, cfg.C, cfg.Sigma)
	for step := 0; step < cfg.Steps; step++ {
		ref.Step(cfg.DT)
	}
	for i := range ref.P {
		if e := abs(out.P[i] - ref.P[i]); e > out.MaxError {
			out.MaxError = e
		}
	}
	return &out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// rkA and rkB expose the low-storage coefficients from the kernels
// package.
func rkA(s int) float64 { return kernels.RKA(s) }
func rkB(s int) float64 { return kernels.RKB(s) }
