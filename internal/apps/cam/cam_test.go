package cam

import (
	"testing"

	"bgpsim/internal/machine"
)

func run(t *testing.T, o Options) *Result {
	t.Helper()
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMPITaskLimit(t *testing.T) {
	_, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 100, Problem: T42})
	if err == nil {
		t.Error("T42 should reject more than 64 MPI tasks")
	}
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 64, Problem: T42}); err != nil {
		t.Errorf("64 tasks should work: %v", err)
	}
}

func TestHybridExtendsScalability(t *testing.T) {
	// Figure 5(a): OpenMP comparable at small counts, and it provides
	// additional scalability beyond the dycore's MPI limit.
	pure := run(t, Options{Machine: machine.BGP, Mode: machine.VN, Procs: 64, Problem: T42})
	hybridSmall := run(t, Options{Machine: machine.BGP, Mode: machine.SMP, Procs: 16, Problem: T42})
	ratio := hybridSmall.SYPD / pure.SYPD
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("hybrid(16x4)/pure(64) SYPD ratio = %.2f, want comparable", ratio)
	}
	// 256 cores: pure MPI is capped at 64 tasks; hybrid uses 64x4.
	hybridBig := run(t, Options{Machine: machine.BGP, Mode: machine.SMP, Procs: 64, Problem: T42})
	if hybridBig.SYPD <= pure.SYPD*1.5 {
		t.Errorf("hybrid at 256 cores (%.1f SYPD) should clearly beat pure MPI's cap (%.1f)",
			hybridBig.SYPD, pure.SYPD)
	}
}

func TestXTAdvantageSpectral(t *testing.T) {
	// Paper: BG/P is never less than 2.1x slower than XT3 and 3.1x
	// slower than XT4 on the spectral problems (best-vs-best).
	bgp, _, err := Best(machine.BGP, T85, 128)
	if err != nil {
		t.Fatal(err)
	}
	xt3, _, err := Best(machine.XT3, T85, 128)
	if err != nil {
		t.Fatal(err)
	}
	xt4, _, err := Best(machine.XT4QC, T85, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r := xt3.SYPD / bgp.SYPD; r < 1.8 || r > 3.0 {
		t.Errorf("XT3/BGP T85 ratio = %.2f, paper says >= 2.1", r)
	}
	if r := xt4.SYPD / bgp.SYPD; r < 2.6 || r > 4.2 {
		t.Errorf("XT4/BGP T85 ratio = %.2f, paper says >= 3.1", r)
	}
}

func TestXTAdvantageSmallerForFV(t *testing.T) {
	// Paper: the comparison is somewhat better for the finite volume
	// dycore (XT4 factor 2-2.5, XT3 under 2).
	bgp, _, err := Best(machine.BGP, FV19, 192)
	if err != nil {
		t.Fatal(err)
	}
	xt4, _, err := Best(machine.XT4QC, FV19, 192)
	if err != nil {
		t.Fatal(err)
	}
	rFV := xt4.SYPD / bgp.SYPD
	if rFV < 1.7 || rFV > 2.9 {
		t.Errorf("XT4/BGP FV ratio = %.2f, paper says 2-2.5", rFV)
	}
	bgpS, _, err := Best(machine.BGP, T85, 128)
	if err != nil {
		t.Fatal(err)
	}
	xt4S, _, err := Best(machine.XT4QC, T85, 128)
	if err != nil {
		t.Fatal(err)
	}
	if rFV >= xt4S.SYPD/bgpS.SYPD {
		t.Errorf("FV ratio %.2f should be below spectral ratio %.2f", rFV, xt4S.SYPD/bgpS.SYPD)
	}
}

func TestLoadBalanceHelpsAtScale(t *testing.T) {
	off := run(t, Options{Machine: machine.BGP, Mode: machine.VN, Procs: 128, Problem: T85})
	on := run(t, Options{Machine: machine.BGP, Mode: machine.VN, Procs: 128, Problem: T85, LoadBalance: true})
	// With even work the barrier waits shrink; allow it to be at
	// least not-worse given the added exchange.
	if on.SYPD < off.SYPD*0.95 {
		t.Errorf("load balancing hurt: %.2f vs %.2f SYPD", on.SYPD, off.SYPD)
	}
}

func TestFV047LargerButSlowerSYPD(t *testing.T) {
	small := run(t, Options{Machine: machine.BGP, Mode: machine.VN, Procs: 192, Problem: FV19})
	large := run(t, Options{Machine: machine.BGP, Mode: machine.VN, Procs: 192, Problem: FV047})
	if large.SYPD >= small.SYPD {
		t.Errorf("the 0.47 degree problem (%.2f SYPD) should be slower than 1.9 degree (%.2f)",
			large.SYPD, small.SYPD)
	}
}

func TestBGLNoHybrid(t *testing.T) {
	if _, err := Run(Options{Machine: machine.BGL, Mode: machine.SMP, Procs: 16, Problem: T42}); err == nil {
		t.Error("BG/L has no OpenMP support; hybrid should fail")
	}
	if _, err := Run(Options{Machine: machine.BGL, Mode: machine.VN, Procs: 16, Problem: T42}); err != nil {
		t.Errorf("BG/L pure MPI should work: %v", err)
	}
}

func TestScalingWithinMPILimit(t *testing.T) {
	r16 := run(t, Options{Machine: machine.XT4QC, Mode: machine.VN, Procs: 16, Problem: T85})
	r128 := run(t, Options{Machine: machine.XT4QC, Mode: machine.VN, Procs: 128, Problem: T85})
	if r128.SYPD <= r16.SYPD*2 {
		t.Errorf("T85 16->128 tasks speedup only %.2fx", r128.SYPD/r16.SYPD)
	}
}

func TestBestPicksFeasible(t *testing.T) {
	res, mode, err := Best(machine.BGP, T42, 512)
	if err != nil {
		t.Fatal(err)
	}
	// 512 cores on a 64-task problem requires threads.
	if mode == machine.VN {
		t.Error("Best should pick a hybrid mode for 512 cores on T42")
	}
	if res.SYPD <= 0 {
		t.Error("no throughput")
	}
}

func TestBadProcs(t *testing.T) {
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 0, Problem: T42}); err == nil {
		t.Error("expected error")
	}
}

func TestHistoryIOPenaltyLargerOnSmallBGPPartitions(t *testing.T) {
	// The paper's CAM I/O issue: on the BG/P, a small partition's
	// history writes funnel through very few I/O nodes.
	sypd := func(io bool) float64 {
		r, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 64,
			Problem: T42, HistoryIO: io})
		if err != nil {
			t.Fatal(err)
		}
		return r.SYPD
	}
	with, without := sypd(true), sypd(false)
	if with >= without {
		t.Errorf("history I/O should cost time: %.2f vs %.2f SYPD", with, without)
	}
	penaltyBGP := without/with - 1

	sypdXT := func(io bool) float64 {
		r, err := Run(Options{Machine: machine.XT4QC, Mode: machine.VN, Procs: 64,
			Problem: T42, HistoryIO: io})
		if err != nil {
			t.Fatal(err)
		}
		return r.SYPD
	}
	penaltyXT := sypdXT(false)/sypdXT(true) - 1
	if penaltyBGP <= penaltyXT {
		t.Errorf("BG/P I/O penalty %.1f%% should exceed the XT's %.1f%%",
			penaltyBGP*100, penaltyXT*100)
	}
}
