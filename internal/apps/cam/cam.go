// Package cam models the Community Atmosphere Model benchmarks of the
// paper's Figure 5: the spectral Eulerian dycore (T42L26, T85L26) and
// the finite-volume dycore (FV 1.9x2.5 and FV 0.47x0.63), each with a
// dynamics phase (transposes / halos) and a physics phase (heavy
// column-local computation), under pure-MPI and hybrid MPI+OpenMP
// parallelism. The spectral dycore's 1-D latitude decomposition caps
// its MPI parallelism, which is why OpenMP threads extend CAM's
// scalability on BG/P (the paper's key CAM observation).
package cam

import (
	"fmt"

	"bgpsim/internal/core"
	"bgpsim/internal/iosys"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// Dycore is the dynamical core compiled into CAM.
type Dycore int

const (
	// SpectralEulerian is CAM's default spectral transform dycore.
	SpectralEulerian Dycore = iota
	// FiniteVolume is the Lin-Rood finite-volume dycore.
	FiniteVolume
)

// Problem is one CAM benchmark configuration.
type Problem struct {
	Name   string
	Dycore Dycore
	NLon   int
	NLat   int
	NLev   int
	// DT is the model timestep in simulated seconds.
	DT float64
	// FlopsPerColumn is the per-column per-step work (physics +
	// dynamics), calibrated so simulated SYPD magnitudes land in the
	// paper's range. [cal]
	FlopsPerColumn float64
	// MaxMPI is the dycore's MPI task limit for this grid.
	MaxMPI int
}

// The paper's four benchmark problems.
var (
	T42 = Problem{Name: "T42L26", Dycore: SpectralEulerian,
		NLon: 128, NLat: 64, NLev: 26, DT: 1200, FlopsPerColumn: 1.2e6, MaxMPI: 64}
	T85 = Problem{Name: "T85L26", Dycore: SpectralEulerian,
		NLon: 256, NLat: 128, NLev: 26, DT: 600, FlopsPerColumn: 1.3e6, MaxMPI: 128}
	FV19 = Problem{Name: "FV 1.9x2.5 L26", Dycore: FiniteVolume,
		NLon: 144, NLat: 96, NLev: 26, DT: 1800, FlopsPerColumn: 1.0e6, MaxMPI: 192}
	FV047 = Problem{Name: "FV 0.47x0.63 L26", Dycore: FiniteVolume,
		NLon: 576, NLat: 384, NLev: 26, DT: 450, FlopsPerColumn: 1.1e6, MaxMPI: 960}
)

// perCoreGF is the sustained single-core CAM rate per machine and
// dycore in GFlop/s, calibrated to the paper's cross-platform ratios
// (XT3 >= 2.1x and XT4 >= 3.1x BG/P for spectral Eulerian; about 2x
// and 2-2.5x for finite volume). [cal]
var perCoreGF = map[Dycore]map[machine.ID]float64{
	SpectralEulerian: {
		machine.BGP:   0.34,
		machine.BGL:   0.27,
		machine.XT3:   0.74,
		machine.XT4DC: 0.76,
		machine.XT4QC: 1.07,
	},
	FiniteVolume: {
		machine.BGP:   0.34,
		machine.BGL:   0.27,
		machine.XT3:   0.62,
		machine.XT4DC: 0.64,
		machine.XT4QC: 0.79,
	},
}

// Options configures one CAM run.
type Options struct {
	Machine machine.ID
	Mode    machine.Mode // VN = pure MPI; SMP/DUAL = hybrid MPI+OpenMP
	Procs   int          // MPI tasks
	Problem Problem
	// LoadBalance enables CAM's physics load-balancing option (extra
	// communication, even work).
	LoadBalance bool
	// HistoryIO adds the periodic history-file write through the
	// machine's storage path — the "system I/O performance issue on
	// the BG/P" the paper hit (and then eliminated) during its CAM
	// scaling runs. The written volume is the full model state every
	// historyStride steps, amortized per step.
	HistoryIO bool
}

// historyStride is the steps between history writes when HistoryIO is
// enabled.
const historyStride = 48

// Result reports one CAM run.
type Result struct {
	SYPD        float64 // simulated years per wall-clock day
	SecPerStep  float64
	DynamicsSec float64 // per step, process 0
	PhysicsSec  float64 // per step, process 0
	Cores       int
}

// Run simulates one CAM timestep and converts to simulated years per
// day. MPI task counts beyond the problem's dycore limit are an error
// (use hybrid mode to apply more cores, as the paper does).
func Run(o Options) (*Result, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("cam: bad proc count %d", o.Procs)
	}
	if o.Procs > o.Problem.MaxMPI {
		return nil, fmt.Errorf("cam: %s supports at most %d MPI tasks (got %d); use OpenMP threads for more cores",
			o.Problem.Name, o.Problem.MaxMPI, o.Procs)
	}
	m := machine.Get(o.Machine)
	rate := perCoreGF[o.Problem.Dycore][o.Machine] * 1e9
	if rate == 0 {
		return nil, fmt.Errorf("cam: no calibration for %s", o.Machine)
	}
	// OpenMP threads scale the per-task rate.
	threads := m.ThreadsPerRank(o.Mode)
	effThreads := 1.0
	if threads > 1 {
		if m.OMPEff == 0 {
			return nil, fmt.Errorf("cam: %s has no OpenMP support", m.Name)
		}
		effThreads = 1 + float64(threads-1)*m.OMPEff
	}
	taskRate := rate * effThreads

	columns := o.Problem.NLon * o.Problem.NLat
	colsPerTask := (columns + o.Procs - 1) / o.Procs
	// Physics is ~65% of the per-column work, dynamics ~35%. [cal]
	physFlops := float64(colsPerTask) * o.Problem.FlopsPerColumn * 0.65
	dynFlops := float64(colsPerTask) * o.Problem.FlopsPerColumn * 0.35
	// Day/night + cloud distribution: physics imbalance without load
	// balancing. [cal]
	const physImbalance = 0.15
	// State volume exchanged by the dynamics transposes.
	stateBytes := columns * o.Problem.NLev * 8 * 3

	cfg := core.PartitionConfig(o.Machine, o.Mode, o.Procs)
	cfg.Fidelity = network.Analytic
	cfg.AnalyticCollectives = true

	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		p := o.Procs
		// --- Dynamics ---
		r.TimerStart("dynamics")
		r.Advance(sim.Seconds(dynFlops / taskRate))
		if p > 1 {
			switch o.Problem.Dycore {
			case SpectralEulerian:
				// Two spectral transposes per step.
				r.World().Alltoall(r, stateBytes/(p*p)+1)
				r.World().Alltoall(r, stateBytes/(p*p)+1)
			case FiniteVolume:
				// Halo exchanges in the lat-lev decomposition plus
				// one transpose between lat-lon and lat-lev spaces.
				nb := (r.ID() + 1) % p
				pb := (r.ID() - 1 + p) % p
				edge := o.Problem.NLon * o.Problem.NLev * 8 * 3 / p
				for h := 0; h < 3; h++ {
					r.Sendrecv(nb, edge+1, 40+h, pb, 40+h)
				}
				r.World().Alltoall(r, stateBytes/(p*p)+1)
			}
		}
		r.TimerStop("dynamics")

		// --- Physics ---
		r.TimerStart("physics")
		if o.LoadBalance && p > 1 {
			// Column redistribution: pairwise exchange of half the
			// column state, then even work.
			partner := r.ID() ^ 1
			if partner < p {
				r.Sendrecv(partner, stateBytes/p/2+1, 60, partner, 60)
			}
			r.Advance(sim.Seconds(physFlops * (1 + physImbalance/2) / taskRate))
		} else {
			imb := physImbalance * r.RNG().Float64()
			r.Advance(sim.Seconds(physFlops * (1 + imb) / taskRate))
		}
		r.TimerStop("physics")

		// Optional history output: rank 0 gathers the state and the
		// partition writes it through the storage path.
		if o.HistoryIO {
			r.World().Gather(r, 0, stateBytes/p+1)
			storage := iosys.ORNLEugene()
			if o.Machine != machine.BGP && o.Machine != machine.BGL {
				storage = iosys.ORNLJaguar()
			}
			nodes := p / m.RanksPerNode(o.Mode)
			if nodes < 1 {
				nodes = 1
			}
			ioSec, ioErr := storage.WriteTime(nodes, float64(stateBytes), 1)
			if ioErr == nil {
				// Amortize the periodic write over the stride.
				r.Advance(sim.Seconds(ioSec / historyStride))
			}
		}
		r.World().Barrier(r)
	})
	if err != nil {
		return nil, err
	}

	secPerStep := res.Elapsed.Seconds()
	stepsPerYear := 365 * 86400 / o.Problem.DT
	secPerYear := secPerStep * stepsPerYear
	return &Result{
		SYPD:        86400 / secPerYear,
		SecPerStep:  secPerStep,
		DynamicsSec: res.TimerOfRank(0, "dynamics").Seconds(),
		PhysicsSec:  res.TimerOfRank(0, "physics").Seconds(),
		Cores:       o.Procs * threads,
	}, nil
}

// Best returns the best achievable SYPD on a machine for a core
// budget, trying pure MPI and hybrid modes with and without load
// balancing — the paper's "best observed performance over the
// optimization options".
func Best(id machine.ID, prob Problem, cores int) (*Result, machine.Mode, error) {
	m := machine.Get(id)
	var best *Result
	var bestMode machine.Mode
	for _, mode := range []machine.Mode{machine.VN, machine.DUAL, machine.SMP} {
		if !m.SupportsMode(mode) {
			continue
		}
		threads := m.ThreadsPerRank(mode)
		if threads > 1 && m.OMPEff == 0 {
			continue
		}
		procs := cores / threads
		if procs < 1 {
			continue
		}
		if procs > prob.MaxMPI {
			procs = prob.MaxMPI
		}
		for _, lb := range []bool{false, true} {
			r, err := Run(Options{Machine: id, Mode: mode, Procs: procs, Problem: prob, LoadBalance: lb})
			if err != nil {
				return nil, 0, err
			}
			if best == nil || r.SYPD > best.SYPD {
				best, bestMode = r, mode
			}
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("cam: no feasible configuration for %d cores", cores)
	}
	return best, bestMode, nil
}
