package md

import (
	"testing"

	"bgpsim/internal/machine"
)

func TestCodeString(t *testing.T) {
	if LAMMPS.String() != "LAMMPS" || PMEMD.String() != "AMBER/PMEMD" {
		t.Error("code names wrong")
	}
}

func TestXTFasterAtModestCounts(t *testing.T) {
	xt, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 128, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	bgp, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 128, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	if xt.NsPerDay <= bgp.NsPerDay {
		t.Error("XT4 should be faster at 128 tasks")
	}
}

func TestBGPHigherParallelEfficiency(t *testing.T) {
	// Paper: "The collective network of the BG/P results in relatively
	// higher parallel efficiencies."
	bgp, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2048, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	xt, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 2048, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	if bgp.Efficiency <= xt.Efficiency {
		t.Errorf("BG/P efficiency %.2f should beat XT %.2f at 2048 tasks",
			bgp.Efficiency, xt.Efficiency)
	}
}

func TestPMEMDScalingMoreLimited(t *testing.T) {
	// Paper: PMEMD scaling is limited by growing communication volume
	// and output frequency.
	lam, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 1024, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	pme, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 1024, Code: PMEMD})
	if err != nil {
		t.Fatal(err)
	}
	if pme.Efficiency >= lam.Efficiency {
		t.Errorf("PMEMD efficiency %.2f should trail LAMMPS %.2f", pme.Efficiency, lam.Efficiency)
	}
	if pme.CommFraction <= lam.CommFraction {
		t.Errorf("PMEMD comm fraction %.2f should exceed LAMMPS %.2f",
			pme.CommFraction, lam.CommFraction)
	}
}

func TestNewerGenerationsFaster(t *testing.T) {
	// Paper: subsequent generations improve, particularly at large
	// task counts (network and memory bandwidth).
	xt3, err := Run(Options{Machine: machine.XT3, Mode: machine.VN, Procs: 1024, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	xt4, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 1024, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	if xt4.NsPerDay <= xt3.NsPerDay {
		t.Error("XT4/DC should beat XT3")
	}
	bgl, err := Run(Options{Machine: machine.BGL, Mode: machine.VN, Procs: 1024, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	bgp, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 1024, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	if bgp.NsPerDay <= bgl.NsPerDay {
		t.Error("BG/P should beat BG/L")
	}
}

func TestScalingSeries(t *testing.T) {
	s, err := Scaling(machine.BGP, machine.VN, LAMMPS, []int{64, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 3 || s.Y[2] <= s.Y[0] {
		t.Errorf("throughput should grow with tasks: %v", s.Y)
	}
}

func TestEfficiencyDecaysWithScale(t *testing.T) {
	small, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 64, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 4096, Code: LAMMPS})
	if err != nil {
		t.Fatal(err)
	}
	if big.Efficiency >= small.Efficiency {
		t.Error("efficiency should decay with scale on a fixed-size system")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 0}); err == nil {
		t.Error("expected error")
	}
	if _, err := Run(Options{Machine: "zz", Mode: machine.VN, Procs: 8}); err == nil {
		t.Error("expected error for unknown machine")
	}
}
