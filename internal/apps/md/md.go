// Package md models the molecular-dynamics benchmarks of the paper's
// Figure 8: the RuBisCO enzyme system (290,220 atoms, explicit
// solvent, 10/11 Angstrom cutoffs) under a LAMMPS-style spatial
// decomposition and an AMBER/PMEMD-style particle-mesh-Ewald code.
// PMEMD adds distributed 3-D FFT transposes and a higher output
// frequency, which is what limits its scaling in the paper.
package md

import (
	"fmt"
	"math"

	"bgpsim/internal/core"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
)

// Code selects the MD application model.
type Code int

const (
	// LAMMPS: spatial decomposition, short-range + reciprocal space.
	LAMMPS Code = iota
	// PMEMD: AMBER's particle-mesh Ewald module.
	PMEMD
)

// String names the code.
func (c Code) String() string {
	if c == PMEMD {
		return "AMBER/PMEMD"
	}
	return "LAMMPS"
}

// Benchmark constants for the RuBisCO system.
const (
	// Atoms in the paper's target system.
	Atoms = 290220
	// flopsPerAtomStep: neighbour forces within the 10-11 A cutoff. [cal]
	flopsPerAtomStep = 9000.0
	// boundaryFraction scales the surface-atom exchange volume. [cal]
	boundaryScale = 9.0
	// pmeGrid is the particle-mesh Ewald charge grid (per dimension).
	pmeGrid = 128
	// Output strides: PMEMD writes trajectories more often (the
	// paper's "relatively higher output frequency").
	lammpsOutputStride = 1000
	pmemdOutputStride  = 100
)

// perCoreGF is the sustained MD rate per core. [cal]
var perCoreGF = map[machine.ID]float64{
	machine.BGP:   0.35,
	machine.BGL:   0.28,
	machine.XT3:   0.80,
	machine.XT4DC: 0.86,
	machine.XT4QC: 1.12,
}

// Options configures one MD run.
type Options struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	Code    Code
}

// Result reports one MD run.
type Result struct {
	SecPerStep   float64
	NsPerDay     float64 // at a 1 fs timestep
	Efficiency   float64 // vs perfect strong scaling from 16 tasks
	CommFraction float64
}

// Run simulates one MD timestep (amortizing periodic output).
func Run(o Options) (*Result, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("md: bad proc count %d", o.Procs)
	}
	rate, ok := perCoreGF[o.Machine]
	if !ok {
		return nil, fmt.Errorf("md: no calibration for %s", o.Machine)
	}
	m := machine.Get(o.Machine)
	threads := m.ThreadsPerRank(o.Mode)
	eff := 1.0
	if threads > 1 && m.OMPEff > 0 {
		eff = 1 + float64(threads-1)*m.OMPEff
	}
	taskRate := rate * 1e9 * eff

	atomsPerTask := float64(Atoms) / float64(o.Procs)
	// Boundary atoms exchanged with each of six neighbours.
	boundaryAtoms := boundaryScale * math.Pow(atomsPerTask, 2.0/3.0)
	exchBytes := int(boundaryAtoms*48) + 1 // position + velocity

	px, py, pz := grid3(o.Procs)
	outputStride := lammpsOutputStride
	if o.Code == PMEMD {
		outputStride = pmemdOutputStride
	}

	cfg := core.PartitionConfig(o.Machine, o.Mode, o.Procs)
	cfg.Fidelity = network.Analytic
	cfg.AnalyticCollectives = true

	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		me := r.ID()
		p := o.Procs
		// Short-range force computation.
		r.Advance(sim.Seconds(atomsPerTask * flopsPerAtomStep / taskRate))
		r.TimerStart("comm")
		// Neighbour exchange in three dimensions.
		mx, my, mz := me%px, (me/px)%py, me/(px*py)
		wrap := func(v, m int) int { return ((v % m) + m) % m }
		at := func(x, y, z int) int { return wrap(z, pz)*px*py + wrap(y, py)*px + wrap(x, px) }
		dims := [3][2]int{
			{at(mx-1, my, mz), at(mx+1, my, mz)},
			{at(mx, my-1, mz), at(mx, my+1, mz)},
			{at(mx, my, mz-1), at(mx, my, mz+1)},
		}
		for d := 0; d < 3; d++ {
			lo, hi := dims[d][0], dims[d][1]
			if lo == me {
				continue
			}
			r.Sendrecv(lo, exchBytes, 80+d, hi, 80+d)
			r.Sendrecv(hi, exchBytes, 83+d, lo, 83+d)
		}
		if o.Code == PMEMD && p > 1 {
			// PME reciprocal space: two transposes of the charge grid.
			gridBytes := pmeGrid * pmeGrid * pmeGrid * 16
			r.World().Alltoall(r, gridBytes/(p*p)+1)
			r.World().Alltoall(r, gridBytes/(p*p)+1)
			// FFT compute.
			n := float64(pmeGrid * pmeGrid * pmeGrid)
			r.Advance(sim.Seconds(5 * n * math.Log2(n) / float64(p) / taskRate))
		}
		// Energy/virial reductions.
		r.World().Allreduce(r, 8, true)
		r.World().Allreduce(r, 8, true)
		// Amortized trajectory output: gather coordinates to rank 0
		// every outputStride steps.
		if p > 1 {
			r.World().Gather(r, 0, int(atomsPerTask*24)/outputStride+1)
		}
		r.TimerStop("comm")
	})
	if err != nil {
		return nil, err
	}
	sec := res.Elapsed.Seconds()
	comm := res.MaxTimer("comm").Seconds()

	base := float64(Atoms) / 16 * flopsPerAtomStep / taskRate // 16-task compute-only baseline
	ideal := base * 16 / float64(o.Procs)
	return &Result{
		SecPerStep:   sec,
		NsPerDay:     86400 / sec * 1e-6, // 1 fs per step
		Efficiency:   ideal / sec,
		CommFraction: comm / sec,
	}, nil
}

// grid3 factors p into a near-cubic 3-D decomposition.
func grid3(p int) (x, y, z int) {
	best := [3]int{1, 1, p}
	bestScore := p + p + 1
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		rem := p / a
		for b := a; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			score := a*b + b*c + a*c
			if score < bestScore {
				best, bestScore = [3]int{a, b, c}, score
			}
		}
	}
	return best[0], best[1], best[2]
}

// Scaling builds a Figure 8-style series: nanoseconds per day versus
// task count.
func Scaling(id machine.ID, mode machine.Mode, code Code, procCounts []int) (*stats.Series, error) {
	s := &stats.Series{Name: fmt.Sprintf("%s %s", id, code)}
	for _, n := range procCounts {
		r, err := Run(Options{Machine: id, Mode: mode, Procs: n, Code: code})
		if err != nil {
			return nil, err
		}
		s.Add(float64(n), r.NsPerDay)
	}
	return s, nil
}
