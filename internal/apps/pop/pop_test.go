package pop

import (
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/topology"
)

func TestBlockDims(t *testing.T) {
	cases := map[int][2]int{8000: {80, 100}, 4096: {64, 64}, 7: {1, 7}, 1: {1, 1}}
	for p, want := range cases {
		px, py := blockDims(p)
		if px != want[0] || py != want[1] {
			t.Errorf("blockDims(%d) = %dx%d, want %dx%d", p, px, py, want[0], want[1])
		}
	}
}

func TestImbalanceSpreadGrowsAsBlocksShrink(t *testing.T) {
	if imbalanceSpread(10000) >= imbalanceSpread(100) {
		t.Error("smaller blocks should have larger imbalance spread")
	}
	if imbalanceSpread(1) > 0.6 {
		t.Error("spread should be capped")
	}
}

func TestScalesWithProcs(t *testing.T) {
	// Figure 4(a): near-linear scaling at these sizes.
	r500, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 500, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	r2000, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2000, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	speedup := r2000.SYD / r500.SYD
	if speedup < 3.0 || speedup > 4.2 {
		t.Errorf("500->2000 speedup = %.2f, want near 4", speedup)
	}
}

func TestPaperAnchor8000(t *testing.T) {
	if testing.Short() {
		t.Skip("8000-rank run in -short mode")
	}
	// Paper: BG/P ~3.6 SYD at 8000 VN tasks; XT4 ~3.6x faster.
	bgp, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 8000, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	if bgp.SYD < 2.9 || bgp.SYD > 4.3 {
		t.Errorf("BG/P SYD at 8000 = %.2f, paper says ~3.6", bgp.SYD)
	}
	xt, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 8000, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	ratio := xt.SYD / bgp.SYD
	if ratio < 2.8 || ratio > 4.4 {
		t.Errorf("XT4/BGP ratio at 8000 = %.2f, paper says ~3.6", ratio)
	}
}

func TestBarotropicCheapOnBGP(t *testing.T) {
	// The tree network makes the latency-bound barotropic phase a
	// small fraction on BG/P.
	r, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2000, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	if r.BarotropicSec >= r.BaroclinicSec {
		t.Errorf("BG/P barotropic %.1f should be well below baroclinic %.1f",
			r.BarotropicSec, r.BaroclinicSec)
	}
}

func TestXTBarotropicStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("large runs in -short mode")
	}
	// Figure 4(d): XT4 barotropic stops improving beyond ~8000 procs
	// while BG/P's continues improving.
	xt8, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 8000, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	xt22, err := Run(Options{Machine: machine.XT4DC, Mode: machine.VN, Procs: 22500, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	if xt22.BarotropicSec < xt8.BarotropicSec {
		t.Errorf("XT barotropic should not improve: %.1f @8000 vs %.1f @22500",
			xt8.BarotropicSec, xt22.BarotropicSec)
	}
	// And it dominates beyond 10000 processes.
	if xt22.BarotropicSec <= xt22.BaroclinicSec {
		t.Errorf("XT barotropic %.1f should dominate baroclinic %.1f at 22500",
			xt22.BarotropicSec, xt22.BaroclinicSec)
	}
	bgp8, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 8000, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	bgp22, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 22500, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	if bgp22.BarotropicSec >= bgp8.BarotropicSec {
		t.Errorf("BG/P barotropic should keep improving: %.1f @8000 vs %.1f @22500",
			bgp8.BarotropicSec, bgp22.BarotropicSec)
	}
}

func TestSolverVariantsClose(t *testing.T) {
	// Figure 4(a): performance relatively insensitive to the solver.
	std, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 512, Solver: StandardCG})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 512, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	if cg.BarotropicSec > std.BarotropicSec {
		t.Errorf("C-G barotropic %.2f should not exceed standard %.2f",
			cg.BarotropicSec, std.BarotropicSec)
	}
	ratio := std.SYD / cg.SYD
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("solver variants differ %.2fx in total SYD, want <10%%", ratio)
	}
}

func TestModesInsensitive(t *testing.T) {
	// Figure 4(a): POP is pure MPI, so at equal PROCESS counts the
	// execution mode barely matters — SMP mode idles three cores but
	// gives the rank more memory bandwidth.
	vn, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2048, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	smp, err := Run(Options{Machine: machine.BGP, Mode: machine.SMP, Procs: 2048, Solver: ChronopoulosGear})
	if err != nil {
		t.Fatal(err)
	}
	ratio := smp.SYD / vn.SYD
	if ratio < 0.9 || ratio > 1.5 {
		t.Errorf("SMP/VN SYD ratio at 2048 tasks = %.2f, want near 1 (slightly above)", ratio)
	}
}

func TestTimingBarrierCapturesImbalance(t *testing.T) {
	r, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 1000,
		Solver: ChronopoulosGear, TimingBarrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.BarrierSec <= 0 {
		t.Error("timing barrier should record imbalance wait")
	}
	// The barrier adds little to the total (paper: "decreases overall
	// POP performance very little") — it only re-attributes time.
	r2, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 1000,
		Solver: ChronopoulosGear, TimingBarrier: false})
	if err != nil {
		t.Fatal(err)
	}
	if diff := r.SecondsPerDay / r2.SecondsPerDay; diff > 1.05 {
		t.Errorf("timing barrier inflated the run by %.2fx", diff)
	}
}

func TestSYDModel(t *testing.T) {
	model := SYDModel(machine.BGP, machine.VN, ChronopoulosGear)
	a, b := model(512), model(2048)
	if b <= a {
		t.Errorf("SYD model should grow with cores: %.2f vs %.2f", a, b)
	}
	if model(512) != a {
		t.Error("model should be memoized and deterministic")
	}
}

func TestBadProcs(t *testing.T) {
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 0}); err == nil {
		t.Error("expected error for zero procs")
	}
}

func TestMappingInsensitive(t *testing.T) {
	// The paper §III.A: the difference between the TXYZ ordering and
	// the best of the other predefined mappings was under 1.4% (VN).
	// POP's halos are small relative to its compute, so even in the
	// contention-fidelity model the spread stays small.
	syd := func(m topology.Mapping) float64 {
		r, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 512,
			Solver: ChronopoulosGear, Mapping: m, Fidelity: network.Contention})
		if err != nil {
			t.Fatal(err)
		}
		return r.SYD
	}
	base := syd(topology.MapTXYZ)
	for _, m := range []topology.Mapping{topology.MapXYZT, topology.MapZYXT, topology.MapTZYX} {
		v := syd(m)
		diff := (v - base) / base
		if diff < 0 {
			diff = -diff
		}
		// The paper measured <1.4%; our contention model is somewhat
		// more mapping-sensitive at this scale, but the qualitative
		// claim — POP mapping sensitivity is small compared to the
		// >2x spread of the pure-communication HALO benchmark — holds.
		if diff > 0.08 {
			t.Errorf("mapping %s differs from TXYZ by %.1f%%, want small (<8%%)", m, diff*100)
		}
	}
}
