// Package pop models the Parallel Ocean Program tenth-degree benchmark
// of the paper's Figure 4: a 3600 x 2400 x 40 displaced-pole grid in a
// 2-D block decomposition, with a 3-D baroclinic phase (nearest-
// neighbour halos plus dense compute, with land-induced load imbalance)
// and a 2-D barotropic phase (a conjugate-gradient solve whose global
// reductions make it latency-bound). The Chronopoulos-Gear solver
// variant halves the reduction count per iteration.
package pop

import (
	"fmt"
	"math"

	"bgpsim/internal/core"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/topology"
)

// Solver selects the barotropic linear solver formulation.
type Solver int

const (
	// StandardCG needs two global reductions per iteration.
	StandardCG Solver = iota
	// ChronopoulosGear fuses them into one (paper's "C-G" variant).
	ChronopoulosGear
)

// String names the solver.
func (s Solver) String() string {
	if s == ChronopoulosGear {
		return "ChronGear"
	}
	return "CG"
}

// Benchmark constants for the tenth-degree problem.
const (
	GridX  = 3600
	GridY  = 2400
	Levels = 40

	// stepsPerDay is the model timesteps per simulated day. [cal]
	stepsPerDay = 225

	// Baroclinic work per grid cell per level per step. [cal]
	baroclinicFlopsPerCell = 1600.0
	baroclinicBytesPerCell = 120.0
	// Halo exchanges (distinct variables) per baroclinic step.
	baroclinicHalos = 8

	// Barotropic CG iterations per step and work per 2-D cell. [cal]
	barotropicIters        = 180
	barotropicFlopsPerCell = 18.0 // 9-point stencil matvec
	// Iterations actually simulated; the rest are extrapolated.
	barotropicItersSim = 12
)

// Options configures one POP run.
type Options struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	Solver  Solver
	// TimingBarrier inserts the paper's extra barrier before the
	// barotropic phase so process 0's barotropic timer is not
	// contaminated by baroclinic load imbalance.
	TimingBarrier bool
	// Mapping selects the process-to-processor mapping (default
	// TXYZ, the paper's choice; §III.A reports <1.4% sensitivity).
	Mapping topology.Mapping
	// Fidelity selects the torus model (default Analytic, which large
	// sweeps need; use Contention for mapping studies).
	Fidelity network.Fidelity
}

// Result reports one simulated-day cost breakdown (process-0 timers,
// as the paper reports).
type Result struct {
	SecondsPerDay float64
	SYD           float64 // simulated years per wall-clock day
	BaroclinicSec float64 // process-0 baroclinic seconds per simulated day
	BarotropicSec float64 // process-0 barotropic seconds per simulated day
	BarrierSec    float64 // process-0 time in the timing barrier
	Procs         int
}

// imbalanceSpread returns the land/ocean work-imbalance spread for a
// block of the given cell count: the displaced-pole grid's land points
// are distributed unevenly, and the smaller the blocks, the larger the
// relative spread between the most- and least-loaded process. [cal]
func imbalanceSpread(cellsPerRank float64) float64 {
	s := 0.06 + 6/math.Sqrt(cellsPerRank)
	if s > 0.6 {
		s = 0.6
	}
	return s
}

// blockDims splits the horizontal grid over p processes as evenly as
// possible (most-square process grid).
func blockDims(p int) (px, py int) {
	px = 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			px = f
		}
	}
	return px, p / px
}

// Run simulates one timestep of POP and extrapolates to a simulated
// day.
func Run(o Options) (*Result, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("pop: bad proc count %d", o.Procs)
	}
	px, py := blockDims(o.Procs)
	bx := (GridX + px - 1) / px
	by := (GridY + py - 1) / py
	cells := float64(bx * by)

	cfg := core.PartitionConfig(o.Machine, o.Mode, o.Procs)
	cfg.Fidelity = o.Fidelity // Analytic by default
	cfg.AnalyticCollectives = true
	if o.Mapping != "" {
		cfg.Mapping = o.Mapping
	} else {
		cfg.Mapping = topology.MapTXYZ
	}

	// POP 1.4.3 is pure MPI: in SMP/DUAL modes the extra cores of a
	// node idle, and the only benefit is the rank's larger share of
	// node memory bandwidth. The cpu model multiplies flop rates by
	// the rank's thread count, so multiplying the flop inputs by the
	// same factor cancels the thread speedup while the byte counts
	// keep the bandwidth benefit — this is why the paper finds POP
	// "relatively insensitive to the execution modes" at equal
	// process counts.
	m := machine.Get(o.Machine)
	threadCancel := 1.0
	if t := m.ThreadsPerRank(o.Mode); t > 1 && m.OMPEff > 0 {
		threadCancel = 1 + float64(t-1)*m.OMPEff
	}

	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		me := r.ID()
		x, y := me%px, me/px
		wrap := func(v, m int) int { return ((v % m) + m) % m }
		at := func(x, y int) int { return wrap(y, py)*px + wrap(x, px) }
		west, east := at(x-1, y), at(x+1, y)
		north, south := at(x, y-1), at(x, y+1)

		// --- Baroclinic phase: 3-D compute + halos. ---
		// The grid-uniform work interleaves with the halo exchanges;
		// the land/ocean-dependent remainder is local to each block
		// and runs after the last halo, so blocks with more ocean
		// points fall behind — the load imbalance the paper measures
		// with its timing barrier.
		r.TimerStart("baroclinic")
		work := cells * Levels
		r.Compute(work*baroclinicFlopsPerCell*threadCancel, work*baroclinicBytesPerCell, machine.ClassStencil)
		for h := 0; h < baroclinicHalos; h++ {
			ewBytes := by * Levels * 8 * 2 // two-deep halo
			nsBytes := bx * Levels * 8 * 2
			tag := 100 + h*2
			r1 := r.Irecv(east, tag)
			r2 := r.Irecv(south, tag+1)
			s1 := r.Isend(west, ewBytes, tag)
			s2 := r.Isend(north, nsBytes, tag+1)
			r.Waitall(r1, r2, s1, s2)
		}
		imb := imbalanceSpread(cells) * r.RNG().Float64()
		r.Compute(work*baroclinicFlopsPerCell*imb*threadCancel, work*baroclinicBytesPerCell*imb, machine.ClassStencil)
		r.TimerStop("baroclinic")

		// --- Synchronization before the barotropic solve. With the
		// paper's timing barrier it is measured separately; without
		// it, the baroclinic load-imbalance wait lands in the
		// barotropic timer (the contamination the paper describes).
		if o.TimingBarrier {
			r.TimerStart("barrier")
			r.World().Barrier(r)
			r.TimerStop("barrier")
			r.TimerStart("barotropic")
		} else {
			r.TimerStart("barotropic")
			r.World().Barrier(r)
		}

		// --- Barotropic phase: 2-D CG solve. The iteration core is
		// timed separately so only it is extrapolated from the
		// simulated iterations to the full count.
		r.TimerStart("barotropic-core")
		for it := 0; it < barotropicItersSim; it++ {
			// 9-point stencil matvec on the 2-D field.
			r.Compute(cells*barotropicFlopsPerCell*threadCancel, cells*8*3, machine.ClassStencil)
			// 2-D halo of the solution vector.
			tag := 500 + it*2
			r1 := r.Irecv(east, tag)
			r2 := r.Irecv(south, tag+1)
			s1 := r.Isend(west, by*8*2, tag)
			s2 := r.Isend(north, bx*8*2, tag+1)
			r.Waitall(r1, r2, s1, s2)
			// Global reductions: two for standard CG, one fused for
			// Chronopoulos-Gear.
			if o.Solver == ChronopoulosGear {
				r.World().Allreduce(r, 16, true)
			} else {
				r.World().Allreduce(r, 8, true)
				r.World().Allreduce(r, 8, true)
			}
		}
		r.TimerStop("barotropic-core")
		r.TimerStop("barotropic")
	})
	if err != nil {
		return nil, err
	}

	scaleBaro := float64(barotropicIters) / float64(barotropicItersSim)
	core0 := res.TimerOfRank(0, "barotropic-core").Seconds()
	sync0 := res.TimerOfRank(0, "barotropic").Seconds() - core0 // contamination (zero with timing barrier)
	stepBaroclinic := res.TimerOfRank(0, "baroclinic").Seconds()
	stepBarotropic := core0*scaleBaro + sync0
	stepBarrier := res.TimerOfRank(0, "barrier").Seconds()
	stepTotal := res.Elapsed.Seconds() + (scaleBaro-1)*res.MaxTimer("barotropic-core").Seconds()

	secDay := stepTotal * stepsPerDay
	return &Result{
		SecondsPerDay: secDay,
		SYD:           86400 / secDay / 365,
		BaroclinicSec: stepBaroclinic * stepsPerDay,
		BarotropicSec: stepBarotropic * stepsPerDay,
		BarrierSec:    stepBarrier * stepsPerDay,
		Procs:         o.Procs,
	}, nil
}

// SYDModel returns a cached cores -> SYD throughput model for the
// power analysis (Table 3). Cores map to MPI tasks via the mode's
// ranks-per-node. Model evaluations are memoized because the power
// search probes repeatedly.
func SYDModel(id machine.ID, mode machine.Mode, solver Solver) func(cores int) float64 {
	m := machine.Get(id)
	cache := map[int]float64{}
	return func(cores int) float64 {
		ranksPerCore := float64(m.RanksPerNode(mode)) / float64(m.CoresPerNode)
		procs := int(float64(cores) * ranksPerCore)
		if procs < 1 {
			procs = 1
		}
		if v, ok := cache[procs]; ok {
			return v
		}
		res, err := Run(Options{Machine: id, Mode: mode, Procs: procs, Solver: solver, TimingBarrier: false})
		v := 0.0
		if err == nil {
			v = res.SYD
		}
		cache[procs] = v
		return v
	}
}
