package s3d

import (
	"testing"

	"bgpsim/internal/machine"
)

func TestGrid3(t *testing.T) {
	cases := map[int][3]int{8: {2, 2, 2}, 64: {4, 4, 4}, 1: {1, 1, 1}, 12: {2, 2, 3}}
	for p, want := range cases {
		x, y, z := grid3(p)
		if x*y*z != p {
			t.Errorf("grid3(%d) = %dx%dx%d does not cover", p, x, y, z)
		}
		if [3]int{x, y, z} != want {
			t.Errorf("grid3(%d) = %v, want %v", p, [3]int{x, y, z}, want)
		}
	}
}

func TestWeakScalingNearFlat(t *testing.T) {
	// Figure 6: S3D exhibits excellent weak scaling — the cost per
	// grid point per step barely grows with the core count.
	s, err := WeakScaling(machine.BGP, machine.VN, []int{8, 64, 512, 1728})
	if err != nil {
		t.Fatal(err)
	}
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	if last > first*1.25 {
		t.Errorf("weak scaling cost grew %.2fx from 8 to 1728 tasks", last/first)
	}
}

func TestPlatformOrdering(t *testing.T) {
	// Faster cores finish a step sooner; on the core-hours metric the
	// XT's advantage shrinks to its per-core efficiency edge.
	get := func(id machine.ID) *Result {
		r, err := Run(Options{Machine: id, Mode: machine.VN, Procs: 64})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	bgp, xt3, xt4 := get(machine.BGP), get(machine.XT3), get(machine.XT4QC)
	if !(xt4.SecPerStep < xt3.SecPerStep && xt3.SecPerStep < bgp.SecPerStep) {
		t.Errorf("wall time ordering wrong: BGP %.3f XT3 %.3f XT4 %.3f",
			bgp.SecPerStep, xt3.SecPerStep, xt4.SecPerStep)
	}
	// Per-core-hour costs are much closer than wall times (BG/P's
	// cheap slow cores): within a factor ~2.
	if r := bgp.CoreHoursPerPointStep / xt4.CoreHoursPerPointStep; r < 0.8 || r > 2.6 {
		t.Errorf("core-hour cost ratio BGP/XT4 = %.2f, want ~1-2", r)
	}
}

func TestCommFractionSmall(t *testing.T) {
	// The structured mesh + explicit marching keeps S3D compute-bound.
	r, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.CommFraction > 0.35 {
		t.Errorf("comm fraction %.2f too large for S3D", r.CommFraction)
	}
}

func TestSingleProc(t *testing.T) {
	r, err := Run(Options{Machine: machine.XT4QC, Mode: machine.SMP, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.CommFraction != 0 {
		t.Errorf("single task should have no halo communication, got %.3f", r.CommFraction)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 0}); err == nil {
		t.Error("expected error for zero procs")
	}
	if _, err := Run(Options{Machine: "nope", Mode: machine.VN, Procs: 8}); err == nil {
		t.Error("expected error for unknown machine")
	}
}

func TestCustomPointsPerRank(t *testing.T) {
	small, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 8, PointsPerRank: 30 * 30 * 30})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 8, PointsPerRank: 60 * 60 * 60})
	if err != nil {
		t.Fatal(err)
	}
	if big.SecPerStep <= small.SecPerStep {
		t.Error("more points per rank should take longer")
	}
}
