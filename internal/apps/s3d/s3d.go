// Package s3d models the S3D direct numerical simulation benchmark of
// the paper's Figure 6: a pressure-wave problem with CO-H2 chemistry
// (11 species) on a structured Cartesian mesh, 50^3 grid points per
// MPI task (weak scaling), six-stage Runge-Kutta time advance,
// eighth-order finite differences with nine-point stencils, and
// nearest-neighbour ghost-zone exchanges in a 3-D decomposition.
package s3d

import (
	"fmt"
	"math"

	"bgpsim/internal/core"
	"bgpsim/internal/cpu"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
)

// Benchmark constants.
const (
	// DefaultPointsPerRank is the paper's 50^3 per MPI task.
	DefaultPointsPerRank = 50 * 50 * 50
	// rkStages is the six-stage fourth-order Runge-Kutta method.
	rkStages = 6
	// species in the CO-H2 mechanism.
	species = 11
	// ghostWidth: nine-point centered stencils need four ghost planes.
	ghostWidth = 4
	// flopsPerPointStage: derivatives + filters + chemistry per grid
	// point per RK stage. [cal]
	flopsPerPointStage = 2400.0
	// bytesPerPointStage of main-memory traffic. [cal]
	bytesPerPointStage = 700.0
)

// perCoreGF is the sustained S3D rate per core. S3D's dense chemistry
// kernels vectorize well on the double hummer, narrowing the
// clock-rate gap. [cal]
var perCoreGF = map[machine.ID]float64{
	machine.BGP:   0.45,
	machine.BGL:   0.34,
	machine.XT3:   0.80,
	machine.XT4DC: 0.88,
	machine.XT4QC: 1.15,
}

// Options configures one S3D run.
type Options struct {
	Machine       machine.ID
	Mode          machine.Mode
	Procs         int
	PointsPerRank int // defaults to 50^3
}

// Result reports one S3D run.
type Result struct {
	SecPerStep            float64
	CoreHoursPerPointStep float64 // the paper's Figure 6 metric
	CommFraction          float64
}

// Run simulates one S3D timestep.
func Run(o Options) (*Result, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("s3d: bad proc count %d", o.Procs)
	}
	pts := o.PointsPerRank
	if pts == 0 {
		pts = DefaultPointsPerRank
	}
	rate, ok := perCoreGF[o.Machine]
	if !ok {
		return nil, fmt.Errorf("s3d: no calibration for %s", o.Machine)
	}
	m := machine.Get(o.Machine)
	threads := m.ThreadsPerRank(o.Mode)
	eff := 1.0
	if threads > 1 {
		eff = 1 + float64(threads-1)*m.OMPEff
	}
	taskRate := rate * 1e9 * eff

	side := int(math.Round(math.Cbrt(float64(pts))))
	faceBytes := side * side * ghostWidth * (species + 5) * 8

	// 3-D process grid.
	px, py, pz := grid3(o.Procs)

	cfg := core.PartitionConfig(o.Machine, o.Mode, o.Procs)
	cfg.Fidelity = network.Analytic
	cfg.AnalyticCollectives = true
	memBW := cpuModelBW(m, o.Mode)

	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		me := r.ID()
		mx, my, mz := me%px, (me/px)%py, me/(px*py)
		wrap := func(v, m int) int { return ((v % m) + m) % m }
		at := func(x, y, z int) int { return wrap(z, pz)*px*py + wrap(y, py)*px + wrap(x, px) }
		nbrs := [6][2]int{
			{at(mx-1, my, mz), at(mx+1, my, mz)},
			{at(mx, my-1, mz), at(mx, my+1, mz)},
			{at(mx, my, mz-1), at(mx, my, mz+1)},
		}
		for stage := 0; stage < rkStages; stage++ {
			// Compute at the calibrated S3D rate, bounded by the
			// task's share of memory bandwidth (roofline).
			tc := float64(pts) * flopsPerPointStage / taskRate
			tm := float64(pts) * bytesPerPointStage / memBW
			r.Advance(sim.Seconds(math.Max(tc, tm)))
			r.TimerStart("comm")
			for d := 0; d < 3; d++ {
				lo, hi := nbrs[d][0], nbrs[d][1]
				if lo == me { // single process in this dimension
					continue
				}
				tag := 70 + stage*6 + d*2
				r1 := r.Irecv(hi, tag)
				r2 := r.Irecv(lo, tag+1)
				s1 := r.Isend(lo, faceBytes, tag)
				s2 := r.Isend(hi, faceBytes, tag+1)
				r.Waitall(r1, r2, s1, s2)
			}
			r.TimerStop("comm")
		}
		// Monitoring reduction once per step.
		r.World().Allreduce(r, 8, true)
	})
	if err != nil {
		return nil, err
	}
	commSec := res.MaxTimer("comm").Seconds()

	sec := res.Elapsed.Seconds()
	cores := o.Procs * threads
	totalPoints := float64(pts) * float64(o.Procs)
	return &Result{
		SecPerStep:            sec,
		CoreHoursPerPointStep: sec * float64(cores) / totalPoints / 3600,
		CommFraction:          commSec / sec,
	}, nil
}

// grid3 factors p into a near-cubic 3-D process grid.
func grid3(p int) (x, y, z int) {
	best := [3]int{1, 1, p}
	bestScore := p*1 + p*1 + 1
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		rem := p / a
		for b := a; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			score := a*b + b*c + a*c
			if score < bestScore {
				best, bestScore = [3]int{a, b, c}, score
			}
		}
	}
	return best[0], best[1], best[2]
}

// WeakScaling builds the Figure 6 series for one machine: cost per
// grid point per step at the paper's 50^3-per-task weak scaling.
func WeakScaling(id machine.ID, mode machine.Mode, procCounts []int) (*stats.Series, error) {
	s := &stats.Series{Name: string(id)}
	for _, p := range procCounts {
		r, err := Run(Options{Machine: id, Mode: mode, Procs: p})
		if err != nil {
			return nil, err
		}
		s.Add(float64(p), r.CoreHoursPerPointStep)
	}
	return s, nil
}

// cpuModelBW returns the per-task sustainable memory bandwidth.
func cpuModelBW(m *machine.Machine, mode machine.Mode) float64 {
	return cpu.New(m, mode).MemBW()
}
