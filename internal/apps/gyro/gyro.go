// Package gyro models the GYRO gyrokinetic-Maxwell benchmarks of the
// paper's Figure 7: the B1-std problem (16 toroidal modes,
// 16x140x8x8x20 grid, kinetic electrons) and the B3-gtc problem (64
// toroidal modes, 64x400x8x8x20 grid, adiabatic, FFT-based field
// solves). GYRO's dominant communication is MPI_ALLTOALL transposes of
// distributed arrays within toroidal-mode subgroups; B3-gtc's memory
// footprint forces DUAL mode on BG/P (the paper's note).
package gyro

import (
	"fmt"

	"bgpsim/internal/core"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
)

// Problem is one GYRO benchmark case.
type Problem struct {
	Name   string
	Modes  int // toroidal modes; MPI tasks must be a multiple
	Radial int
	Grid   [3]int // velocity-space / energy grid dimensions
	Steps  int
	// FlopsPerPoint per timestep. [cal]
	FlopsPerPoint float64
	// Transposes per timestep (alltoalls within mode subgroups).
	Transposes int
	// BytesPerPointState for the memory-footprint model. [cal]
	BytesPerPointState float64
	FixedMemMB         float64
}

// The paper's two benchmark problems.
var (
	B1Std = Problem{Name: "B1-std", Modes: 16, Radial: 140, Grid: [3]int{8, 8, 20},
		Steps: 500, FlopsPerPoint: 2000, Transposes: 8,
		BytesPerPointState: 600, FixedMemMB: 150}
	// B3-gtc's replicated field and geometry arrays alone exceed a
	// BG/P VN-mode task's 512 MB — the reason the paper ran it in
	// DUAL mode.
	B3GTC = Problem{Name: "B3-gtc", Modes: 64, Radial: 400, Grid: [3]int{8, 8, 20},
		Steps: 100, FlopsPerPoint: 900, Transposes: 6,
		BytesPerPointState: 2000, FixedMemMB: 530}
)

// Points returns the problem's total grid points.
func (p Problem) Points() int {
	return p.Modes * p.Radial * p.Grid[0] * p.Grid[1] * p.Grid[2]
}

// perCoreGF is the sustained GYRO rate per core. [cal]
var perCoreGF = map[machine.ID]float64{
	machine.BGP:   0.30,
	machine.BGL:   0.26,
	machine.XT3:   0.75,
	machine.XT4DC: 0.80,
	machine.XT4QC: 1.10,
}

// Options configures one GYRO run.
type Options struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	Problem Problem
}

// Result reports one GYRO run.
type Result struct {
	SecPerStep   float64
	TotalSec     float64 // for the problem's full step count
	CommFraction float64
	Efficiency   float64 // vs perfect strong scaling from Modes tasks
}

// MemoryPerRankMB returns the problem's per-task memory footprint.
func MemoryPerRankMB(p Problem, procs int) float64 {
	return p.FixedMemMB + float64(p.Points())/float64(procs)*p.BytesPerPointState/1e6
}

// FitsMemory reports whether the problem fits the machine's per-task
// memory in the given mode.
func FitsMemory(id machine.ID, mode machine.Mode, p Problem, procs int) bool {
	m := machine.Get(id)
	perRank := float64(m.MemPerNode) / float64(m.RanksPerNode(mode)) / 1e6
	return MemoryPerRankMB(p, procs) <= perRank
}

// Run simulates one GYRO timestep and scales to the benchmark's step
// count.
func Run(o Options) (*Result, error) {
	if o.Procs < o.Problem.Modes || o.Procs%o.Problem.Modes != 0 {
		return nil, fmt.Errorf("gyro: %s runs on multiples of %d tasks (got %d)",
			o.Problem.Name, o.Problem.Modes, o.Procs)
	}
	if !FitsMemory(o.Machine, o.Mode, o.Problem, o.Procs) {
		return nil, fmt.Errorf("gyro: %s does not fit %s %s memory (%.0f MB/task needed)",
			o.Problem.Name, o.Machine, o.Mode, MemoryPerRankMB(o.Problem, o.Procs))
	}
	rate, ok := perCoreGF[o.Machine]
	if !ok {
		return nil, fmt.Errorf("gyro: no calibration for %s", o.Machine)
	}
	m := machine.Get(o.Machine)
	threads := m.ThreadsPerRank(o.Mode)
	eff := 1.0
	if threads > 1 && m.OMPEff > 0 {
		eff = 1 + float64(threads-1)*m.OMPEff
	}
	taskRate := rate * 1e9 * eff

	points := o.Problem.Points()
	ptsPerTask := float64(points) / float64(o.Procs)
	groupSize := o.Procs / o.Problem.Modes
	// Transpose payload: the local slab spread over the group.
	bytesPerPair := int(ptsPerTask*16/float64(groupSize)) + 1

	cfg := core.PartitionConfig(o.Machine, o.Mode, o.Procs)
	cfg.Fidelity = network.Analytic
	cfg.AnalyticCollectives = true

	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		mode := r.ID() % o.Problem.Modes
		group := r.World().Split(r, mode, r.ID())
		// Collisionless advance.
		r.Advance(sim.Seconds(ptsPerTask * o.Problem.FlopsPerPoint / taskRate))
		// Distributed-array transposes within the mode subgroup.
		r.TimerStart("comm")
		for tr := 0; tr < o.Problem.Transposes; tr++ {
			group.Alltoall(r, bytesPerPair)
		}
		// Field solve: a global reduction of the field arrays.
		fieldBytes := o.Problem.Radial * o.Problem.Modes * 16 / o.Procs
		r.World().Allreduce(r, fieldBytes+8, true)
		r.TimerStop("comm")
	})
	if err != nil {
		return nil, err
	}
	sec := res.Elapsed.Seconds()
	comm := res.MaxTimer("comm").Seconds()

	// Perfect-scaling baseline: pure compute at the minimum task count.
	basePerStep := float64(points) / float64(o.Problem.Modes) * o.Problem.FlopsPerPoint / taskRate
	ideal := basePerStep * float64(o.Problem.Modes) / float64(o.Procs)
	return &Result{
		SecPerStep:   sec,
		TotalSec:     sec * float64(o.Problem.Steps),
		CommFraction: comm / sec,
		Efficiency:   ideal / sec,
	}, nil
}

// StrongScaling builds a Figure 7(a)/(b)-style series: total benchmark
// time versus task count.
func StrongScaling(id machine.ID, mode machine.Mode, p Problem, procCounts []int) (*stats.Series, error) {
	s := &stats.Series{Name: fmt.Sprintf("%s %s", id, p.Name)}
	for _, n := range procCounts {
		r, err := Run(Options{Machine: id, Mode: mode, Procs: n, Problem: p})
		if err != nil {
			return nil, err
		}
		s.Add(float64(n), r.TotalSec)
	}
	return s, nil
}

// WeakScaled builds the Figure 7(c)-style series: the "modified
// B3-gtc" keeps the per-task energy grid constant while tasks grow;
// the reported value is seconds per step.
func WeakScaled(id machine.ID, mode machine.Mode, procCounts []int) (*stats.Series, error) {
	s := &stats.Series{Name: string(id)}
	for _, n := range procCounts {
		p := B3GTC
		// Scale the radial extent with the task count so work per
		// task is constant (the paper shrank the problem to fit BG/P
		// memory; 6.25 radial points per task matches B3-gtc at 1024).
		p.Name = "modified B3-gtc"
		p.Radial = 400 * n / 1024 // constant per-task work, anchored at B3-gtc's 1024-task layout
		// "The problem was modified to fit the memory of a BG/P":
		// smaller state so it also runs on BG/L nodes.
		p.BytesPerPointState = 2000
		p.FixedMemMB = 100
		r, err := Run(Options{Machine: id, Mode: mode, Procs: n, Problem: p})
		if err != nil {
			return nil, err
		}
		s.Add(float64(n), r.SecPerStep)
	}
	return s, nil
}
