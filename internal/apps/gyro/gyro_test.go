package gyro

import (
	"testing"

	"bgpsim/internal/machine"
)

func TestTaskMultiples(t *testing.T) {
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 24, Problem: B1Std}); err == nil {
		t.Error("B1-std should require multiples of 16")
	}
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 8, Problem: B1Std}); err == nil {
		t.Error("fewer tasks than modes should fail")
	}
}

func TestB3NeedsDualOnBGP(t *testing.T) {
	// The paper: "on BG/P the code had to be run in DUAL mode due to
	// memory requirements".
	if FitsMemory(machine.BGP, machine.VN, B3GTC, 2048) {
		t.Error("B3-gtc should NOT fit BG/P VN mode (512 MB/task)")
	}
	if !FitsMemory(machine.BGP, machine.DUAL, B3GTC, 2048) {
		t.Error("B3-gtc should fit BG/P DUAL mode (1 GB/task)")
	}
	if !FitsMemory(machine.XT4QC, machine.VN, B3GTC, 2048) {
		t.Error("B3-gtc fits the XT's 2 GB/task in VN")
	}
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 2048, Problem: B3GTC}); err == nil {
		t.Error("running B3-gtc in BG/P VN mode should fail")
	}
	if _, err := Run(Options{Machine: machine.BGP, Mode: machine.DUAL, Procs: 2048, Problem: B3GTC}); err != nil {
		t.Errorf("B3-gtc in DUAL mode should run: %v", err)
	}
}

func TestB1XTRunsOutOfWork(t *testing.T) {
	// Figure 7(a): the XT4 quickly runs out of work per process while
	// BG/P continues to scale.
	xt256, err := Run(Options{Machine: machine.XT4QC, Mode: machine.VN, Procs: 256, Problem: B1Std})
	if err != nil {
		t.Fatal(err)
	}
	xt1024, err := Run(Options{Machine: machine.XT4QC, Mode: machine.VN, Procs: 1024, Problem: B1Std})
	if err != nil {
		t.Fatal(err)
	}
	bgp256, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 256, Problem: B1Std})
	if err != nil {
		t.Fatal(err)
	}
	bgp1024, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 1024, Problem: B1Std})
	if err != nil {
		t.Fatal(err)
	}
	effXT := xt256.SecPerStep / xt1024.SecPerStep / 4 // fraction of ideal 4x
	effBGP := bgp256.SecPerStep / bgp1024.SecPerStep / 4
	if effBGP <= effXT {
		t.Errorf("BG/P 256->1024 efficiency %.2f should beat XT %.2f", effBGP, effXT)
	}
	if effXT > 0.85 {
		t.Errorf("XT efficiency %.2f should show it running out of work", effXT)
	}
	if effBGP < 0.7 {
		t.Errorf("BG/P efficiency %.2f should stay high", effBGP)
	}
}

func TestB3BothScaleTo2048(t *testing.T) {
	// Figure 7(b): both systems scale B3-gtc to 2048 without a
	// significant efficiency drop.
	for _, c := range []struct {
		id   machine.ID
		mode machine.Mode
	}{{machine.XT4QC, machine.VN}, {machine.BGP, machine.DUAL}} {
		r512, err := Run(Options{Machine: c.id, Mode: c.mode, Procs: 512, Problem: B3GTC})
		if err != nil {
			t.Fatal(err)
		}
		r2048, err := Run(Options{Machine: c.id, Mode: c.mode, Procs: 2048, Problem: B3GTC})
		if err != nil {
			t.Fatal(err)
		}
		eff := r512.SecPerStep / r2048.SecPerStep / 4
		if eff < 0.65 {
			t.Errorf("%s B3-gtc 512->2048 efficiency = %.2f, want no significant drop", c.id, eff)
		}
	}
}

func TestXTFasterPerStep(t *testing.T) {
	xt, err := Run(Options{Machine: machine.XT4QC, Mode: machine.VN, Procs: 128, Problem: B1Std})
	if err != nil {
		t.Fatal(err)
	}
	bgp, err := Run(Options{Machine: machine.BGP, Mode: machine.VN, Procs: 128, Problem: B1Std})
	if err != nil {
		t.Fatal(err)
	}
	if xt.SecPerStep >= bgp.SecPerStep {
		t.Error("XT4 should be faster per step at low task counts")
	}
}

func TestWeakScalingBGPCloseToBGL(t *testing.T) {
	// Figure 7(c): "the BG/P and BG/L numbers are almost the same".
	counts := []int{64, 256, 1024}
	bgp, err := WeakScaled(machine.BGP, machine.VN, counts)
	if err != nil {
		t.Fatal(err)
	}
	bgl, err := WeakScaled(machine.BGL, machine.VN, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		ratio := bgl.Y[i] / bgp.Y[i]
		if ratio < 0.6 || ratio > 1.8 {
			t.Errorf("procs=%d: BG/L / BG/P per-step ratio = %.2f, want near 1", counts[i], ratio)
		}
	}
}

func TestStrongScalingSeries(t *testing.T) {
	s, err := StrongScaling(machine.BGP, machine.VN, B1Std, []int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 3 {
		t.Fatalf("series has %d points", len(s.X))
	}
	if !(s.Y[0] > s.Y[1] && s.Y[1] > s.Y[2]) {
		t.Errorf("total time should shrink with tasks: %v", s.Y)
	}
}

func TestPointsAccounting(t *testing.T) {
	if B1Std.Points() != 16*140*8*8*20 {
		t.Error("B1-std grid points wrong")
	}
	if B3GTC.Points() != 64*400*8*8*20 {
		t.Error("B3-gtc grid points wrong")
	}
}
