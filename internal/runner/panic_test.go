package runner

import (
	"errors"
	"strings"
	"testing"
)

// TestPanicBecomesError: a panicking job must not crash the sweep; it
// fails with a *PanicError naming the index and carrying the stack,
// and every other job's result still commits.
func TestPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		got, err := MapN(16, workers, func(i int) (int, error) {
			if i == 5 {
				panic("simulated model bug")
			}
			return i * i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 5 {
			t.Errorf("workers=%d: PanicError.Index = %d, want 5", workers, pe.Index)
		}
		if pe.Value != "simulated model bug" {
			t.Errorf("workers=%d: PanicError.Value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "panic_test") {
			t.Errorf("workers=%d: stack trace missing panic site", workers)
		}
		// All other results committed in order.
		for i, v := range got {
			if i == 5 {
				if v != 0 {
					t.Errorf("workers=%d: failed index holds %d, want zero value", workers, v)
				}
				continue
			}
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestPanicLowestIndexWins: with several panicking jobs, the error is
// the lowest index's, matching the plain-error contract.
func TestPanicLowestIndexWins(t *testing.T) {
	_, err := MapN(32, 8, func(i int) (int, error) {
		if i%10 == 3 { // 3, 13, 23
			panic(i)
		}
		return 0, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 {
		t.Errorf("PanicError.Index = %d, want lowest failing index 3", pe.Index)
	}
}

// TestPanicErrorMessage pins the report shape: index, value, stack.
func TestPanicErrorMessage(t *testing.T) {
	_, err := MapN(2, 1, func(i int) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return 0, nil
	})
	msg := err.Error()
	if !strings.Contains(msg, "job 1 panicked: boom") {
		t.Errorf("Error() = %q, want job index and panic value", msg)
	}
}

// TestPartialResultsOnPlainError: successful results survive an
// ordinary error too.
func TestPartialResultsOnPlainError(t *testing.T) {
	sentinel := errors.New("bad point")
	got, err := MapN(8, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return i + 100, nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	for i, v := range got {
		if i == 2 {
			continue
		}
		if v != i+100 {
			t.Errorf("out[%d] = %d, want %d", i, v, i+100)
		}
	}
}
