package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	// Later indices finish first; results must still come back in
	// input order.
	got, err := MapN(32, 8, func(i int) (int, error) {
		time.Sleep(time.Duration(32-i) * time.Millisecond / 8)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("len = %d, want 32", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 8, 64} {
		var ran atomic.Int64
		_, err := MapN(16, workers, func(i int) (int, error) {
			ran.Add(1)
			switch i {
			case 3:
				// Delay the low-index failure so high-index one
				// completes first; the low one must still win.
				time.Sleep(5 * time.Millisecond)
				return 0, errLow
			case 11:
				return 0, errHigh
			}
			return i, nil
		})
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
		if n := ran.Load(); n != 16 {
			t.Errorf("workers=%d: ran %d items, want all 16", workers, n)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Errorf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestSweep(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	got, err := Sweep(items, func(s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sweep = %v, want %v", got, want)
		}
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d, want 45", sum.Load())
	}
	wantErr := fmt.Errorf("boom")
	if err := Each(3, func(i int) error {
		if i == 1 {
			return wantErr
		}
		return nil
	}); err != wantErr {
		t.Errorf("Each err = %v, want %v", err, wantErr)
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Errorf("Workers() = %d, want >= 1", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := MapN(64, 4, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("observed %d concurrent workers, want <= 4", p)
	}
}
