// Package runner executes embarrassingly parallel simulation sweeps
// on a bounded worker pool.
//
// Every bgpsim simulation owns a private sim.Kernel and shares no
// mutable state with other simulations, so the points of a sweep — a
// HALO curve over message sizes, an application scaling table over
// machine models — can run concurrently without affecting any
// individual result. The runner keeps that parallelism observably
// invisible: results come back in input order regardless of completion
// order, every item runs even when an earlier one fails, and the error
// returned is always the first in input order, so a sweep at 8 workers
// produces byte-for-byte the output of the same sweep at 1.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// PanicError reports that one sweep job panicked. The worker recovers
// the panic so the rest of the sweep completes and commits; the error
// carries the failing input index, the panic value, and the stack
// trace of the panic site for the bug report.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// safeCall runs fn(i), converting a panic into a *PanicError so one
// broken simulation cannot take down the whole sweep process.
func safeCall[T any](i int, fn func(i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// defaultWorkers, when positive, overrides the GOMAXPROCS-derived
// worker count for calls that do not pass one explicitly.
var defaultWorkers atomic.Int64

// Workers returns the worker count used when none is given: the
// SetWorkers override if set, otherwise GOMAXPROCS.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide default worker count (the CLIs' -j
// flag). n <= 0 restores the GOMAXPROCS default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// BudgetWorkers splits the worker budget between sweep-level
// parallelism and the sharded kernel: a sweep whose jobs each run
// shards kernel goroutines should use Workers()/shards sweep workers
// so the process never oversubscribes the -j budget. Always at least 1.
func BudgetWorkers(shards int) int {
	if shards < 1 {
		shards = 1
	}
	w := Workers() / shards
	if w < 1 {
		w = 1
	}
	return w
}

// Notes collects per-job warning lines (dropped trace events, shard
// fallbacks) from concurrent sweep workers so they can be flushed in
// input order after the sweep instead of interleaving on stderr.
// Add is safe to call concurrently; Flush is not.
type Notes struct {
	mu sync.Mutex
	m  map[int][]string
}

// Add records a note for job i.
func (n *Notes) Add(i int, format string, args ...any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.m == nil {
		n.m = make(map[int][]string)
	}
	n.m[i] = append(n.m[i], fmt.Sprintf(format, args...))
}

// Flush writes all notes in job-index order (and, within a job, in the
// order they were added), then clears the collection. The output is
// identical at any worker count.
func (n *Notes) Flush(w io.Writer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx := make([]int, 0, len(n.m))
	for i := range n.m {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		for _, line := range n.m[i] {
			fmt.Fprintln(w, line)
		}
	}
	n.m = nil
}

// Map calls fn(0..n-1) on the default worker pool and returns the
// results in index order. See MapN.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN(n, 0, fn)
}

// MapN calls fn(0..n-1) on a pool of the given number of workers
// (Workers() when workers <= 0) and returns the results in index
// order. fn must be safe to call concurrently. Every index runs even
// if another fails, and on failure MapN returns the error of the
// lowest failing index — so scheduling order never changes what the
// caller observes. A job that panics is recovered into a *PanicError
// for its index; the other jobs still run to completion. On error the
// returned slice still holds every successful job's result (the zero
// value at failed indices).
func MapN[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			v, err := safeCall(i, fn)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			out[i] = v
		}
		return out, firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = safeCall(i, fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Sweep applies fn to every item on the default worker pool and
// returns the results in input order, with the same error contract as
// MapN.
func Sweep[I, O any](items []I, fn func(item I) (O, error)) ([]O, error) {
	return Map(len(items), func(i int) (O, error) { return fn(items[i]) })
}

// Each runs fn(0..n-1) for side effects on the default worker pool,
// with the same error contract as MapN.
func Each(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}
