package hpcc

import (
	"math"
	"testing"

	"bgpsim/internal/machine"
)

func TestProblemSizeN(t *testing.T) {
	// BG/P VN: 0.5 GB/rank; 4096 ranks at 80% -> sqrt(0.8*4096*0.5GiB/8).
	n := ProblemSizeN(machine.Get(machine.BGP), machine.VN, 4096, 0.8)
	want := int(math.Sqrt(0.8 * 4096 * float64(512<<20) / 8))
	if n != want {
		t.Errorf("N = %d, want %d", n, want)
	}
	// XT has 4x memory per rank: N should be ~2x larger.
	nxt := ProblemSizeN(machine.Get(machine.XT4QC), machine.VN, 4096, 0.8)
	if ratio := float64(nxt) / float64(n); ratio < 1.9 || ratio > 2.1 {
		t.Errorf("XT/BGP problem size ratio = %.2f, want ~2 (paper: 4x memory)", ratio)
	}
}

func TestBlockingNB(t *testing.T) {
	if BlockingNB(machine.BGP) != 144 || BlockingNB(machine.XT4QC) != 168 {
		t.Error("paper's NB values wrong")
	}
}

func TestNearSquareGrid(t *testing.T) {
	cases := map[int][2]int{
		4096: {64, 64},
		8192: {64, 128},
		2048: {32, 64},
		7:    {1, 7},
	}
	for ranks, want := range cases {
		p, q := nearSquareGrid(ranks)
		if p != want[0] || q != want[1] {
			t.Errorf("grid(%d) = %dx%d, want %dx%d", ranks, p, q, want[0], want[1])
		}
		if p*q != ranks {
			t.Errorf("grid(%d) does not cover ranks", ranks)
		}
	}
}

func TestSingleAndEPTable2Claims(t *testing.T) {
	bgp, err := SingleAndEP(machine.BGP, 128)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := SingleAndEP(machine.XT4QC, 128)
	if err != nil {
		t.Fatal(err)
	}
	// DGEMM: XT faster per process (clock).
	if xt.DGEMMGF <= bgp.DGEMMGF {
		t.Errorf("XT DGEMM %.2f should beat BGP %.2f", xt.DGEMMGF, bgp.DGEMMGF)
	}
	// STREAM: BG/P higher absolute and smaller SP->EP decline.
	if bgp.StreamSPGB <= xt.StreamSPGB {
		t.Errorf("BGP STREAM SP %.2f should beat XT %.2f", bgp.StreamSPGB, xt.StreamSPGB)
	}
	declBGP := (bgp.StreamSPGB - bgp.StreamEPGB) / bgp.StreamSPGB
	declXT := (xt.StreamSPGB - xt.StreamEPGB) / xt.StreamSPGB
	if declBGP >= declXT {
		t.Errorf("BGP decline %.2f should be below XT %.2f", declBGP, declXT)
	}
	// Latency: BG/P lower; bandwidth: XT higher.
	if bgp.PingPongLatUS >= xt.PingPongLatUS {
		t.Errorf("BGP latency %.2fus should be below XT %.2fus", bgp.PingPongLatUS, xt.PingPongLatUS)
	}
	if bgp.PingPongBWGBs >= xt.PingPongBWGBs {
		t.Errorf("BGP bandwidth %.2f should be below XT %.2f", bgp.PingPongBWGBs, xt.PingPongBWGBs)
	}
	if bgp.RandRingLatUS >= xt.RandRingLatUS {
		t.Errorf("BGP ring latency %.2f should be below XT %.2f", bgp.RandRingLatUS, xt.RandRingLatUS)
	}
}

func TestHPLAnalyticMatchesPaperEfficiency(t *testing.T) {
	// TOP500 run: BG/P 8192 cores, N=614399, NB=96 -> 21.4 TF (paper
	// §II.C), i.e. ~77% of 27.85 TF peak.
	gf := HPLAnalytic(machine.BGP, machine.VN, 8192, 614399, 96)
	if gf < 19000 || gf > 24000 {
		t.Errorf("BG/P TOP500 HPL = %.0f GF, want ~21400", gf)
	}
	// XT 30976 cores: paper Rmax 205 TF of 260 peak.
	n := ProblemSizeN(machine.Get(machine.XT4QC), machine.VN, 30976, 0.8)
	gfXT := HPLAnalytic(machine.XT4QC, machine.VN, 30976, n, 168)
	if gfXT < 185000 || gfXT > 225000 {
		t.Errorf("XT HPL = %.0f GF, want ~205000", gfXT)
	}
}

func TestHPLScalesNearLinearly(t *testing.T) {
	m := machine.Get(machine.BGP)
	rate := func(ranks int) float64 {
		n := ProblemSizeN(m, machine.VN, ranks, 0.8)
		return HPLAnalytic(machine.BGP, machine.VN, ranks, n, 144)
	}
	r1, r4 := rate(1024), rate(4096)
	eff := (r4 / 4096) / (r1 / 1024)
	if eff < 0.9 || eff > 1.02 {
		t.Errorf("HPL 1k->4k scaling efficiency = %.3f, want near 1", eff)
	}
}

func TestHPLSimulatedAgreesWithAnalytic(t *testing.T) {
	// Small configuration where the event-driven HPL is cheap.
	const n, nb = 4096, 128
	const p, q = 4, 8
	sim, err := HPLSimulated(machine.XT4QC, machine.VN, p, q, n, nb)
	if err != nil {
		t.Fatal(err)
	}
	ana := HPLAnalytic(machine.XT4QC, machine.VN, p*q, n, nb)
	ratio := sim / ana
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("simulated %.1f GF vs analytic %.1f GF: ratio %.2f", sim, ana, ratio)
	}
}

func TestFFTXTFasterButBothScale(t *testing.T) {
	bgp1 := FFTAnalytic(machine.BGP, machine.VN, 1024)
	bgp4 := FFTAnalytic(machine.BGP, machine.VN, 4096)
	xt4 := FFTAnalytic(machine.XT4QC, machine.VN, 4096)
	if xt4 <= bgp4 {
		t.Errorf("XT FFT %.1f should beat BGP %.1f (larger problem, faster cores)", xt4, bgp4)
	}
	if bgp4 <= bgp1 {
		t.Errorf("BGP FFT should scale: %.1f @1k vs %.1f @4k", bgp1, bgp4)
	}
}

func TestPTRANSSimilarAcrossSystems(t *testing.T) {
	// Paper: "Both systems exhibited similar absolute performance".
	bgp := PTRANSAnalytic(machine.BGP, machine.VN, 4096)
	xt := PTRANSAnalytic(machine.XT4QC, machine.VN, 4096)
	ratio := bgp / xt
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("PTRANS BGP %.1f vs XT %.1f GB/s: ratio %.2f too far apart", bgp, xt, ratio)
	}
	if bgp <= 0 || xt <= 0 {
		t.Error("non-positive PTRANS rate")
	}
}

func TestRandomAccessScalesUp(t *testing.T) {
	g1 := RandomAccessGUPS(machine.BGP, machine.VN, 1024)
	g4 := RandomAccessGUPS(machine.BGP, machine.VN, 4096)
	if g4 <= g1 {
		t.Errorf("GUPS should grow with procs: %.3f @1k vs %.3f @4k", g1, g4)
	}
	// Paper: the two systems showed very similar RA performance.
	xt := RandomAccessGUPS(machine.XT4QC, machine.VN, 4096)
	if r := g4 / xt; r < 0.2 || r > 5 {
		t.Errorf("RA parity broken: BGP %.3f vs XT %.3f", g4, xt)
	}
}
