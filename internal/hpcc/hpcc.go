// Package hpcc drives the HPC Challenge benchmark suite on the
// simulator: the single-process and embarrassingly-parallel tests
// (DGEMM, STREAM, FFT), the low-level communication tests (ping-pong
// and random ring), and the MPI-parallel tests (HPL, PTRANS, FFT,
// RandomAccess) whose scaling the paper's Figure 1 reports.
package hpcc

import (
	"math"

	"bgpsim/internal/core"
	"bgpsim/internal/cpu"
	"bgpsim/internal/fault"
	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// ProblemSizeN returns the HPL problem dimension filling the given
// fraction of the partition's aggregate memory, following the HPCC
// guidance the paper used (~80%).
func ProblemSizeN(m *machine.Machine, mode machine.Mode, ranks int, frac float64) int {
	memPerRank := float64(m.MemPerNode) / float64(m.RanksPerNode(mode))
	total := memPerRank * float64(ranks)
	return int(math.Sqrt(frac * total / 8))
}

// BlockingNB returns the paper's empirically chosen HPL blocking
// factors: 144 on BG/P, 168 on the XT.
func BlockingNB(id machine.ID) int {
	if id == machine.BGP || id == machine.BGL {
		return 144
	}
	return 168
}

// EPResults holds the Table 2 single-process (SP) and embarrassingly
// parallel (EP) test results plus the communication micro-benchmarks.
type EPResults struct {
	DGEMMGF       float64 // per-process DGEMM, GFlop/s
	StreamSPGB    float64 // single-process STREAM triad, GB/s
	StreamEPGB    float64 // embarrassingly-parallel STREAM triad per process, GB/s
	FFTEPGF       float64 // embarrassingly-parallel FFT per process, GFlop/s
	PingPongLatUS float64 // 0-byte one-way latency, microseconds
	PingPongBWGBs float64 // large-message ping-pong bandwidth, GB/s
	RandRingLatUS float64 // random-ring 0-byte latency, microseconds
	RandRingBWGBs float64 // random-ring per-process bandwidth, GB/s
}

// SingleAndEP runs the Table 2 tests for a machine at the given rank
// count in VN mode on the serial kernel.
func SingleAndEP(id machine.ID, ranks int) (*EPResults, error) {
	return SingleAndEPSharded(id, ranks, 0)
}

// SingleAndEPSharded is SingleAndEP with an explicit kernel-shard
// request for its simulated communication tests. They run at
// contention fidelity, which the sharded kernel rejects, so today any
// request falls back to the serial kernel (output is identical either
// way); the parameter keeps the job surface uniform with bgpsim/halo
// and — being a parameter rather than package state — safe for
// concurrent jobs with different shard requests.
func SingleAndEPSharded(id machine.ID, ranks, shards int) (*EPResults, error) {
	return SingleAndEPFaultySharded(id, ranks, nil, shards)
}

// SingleAndEPFaultySharded is SingleAndEPSharded with a fault plan
// injected into the simulated communication tests — in practice a
// variability-only plan (Spec.Var), whose per-node bandwidth draws
// move the ping-pong and random-ring numbers. A nil plan is the
// historical healthy path, byte for byte.
func SingleAndEPFaultySharded(id machine.ID, ranks int, plan *fault.Plan, shards int) (*EPResults, error) {
	m := machine.Get(id)
	model := cpu.New(m, machine.VN)
	r := &EPResults{
		DGEMMGF:    model.DGEMMRate() / 1e9,
		StreamSPGB: model.StreamTriadBW(false) / 1e9,
		StreamEPGB: model.StreamTriadBW(true) / 1e9,
		FFTEPGF:    model.FlopRate(machine.ClassFFT) / 1e9,
	}

	// Communication tests run on the simulated partition.
	cfg := core.PartitionConfig(id, machine.VN, ranks)
	cfg.Fidelity = network.Contention
	cfg.Shards = shards
	cfg.Faults = plan

	// Ping-pong between rank 0 and a rank half the machine away. Under
	// the default XYZT mapping, rank k < nodes sits on node k, so rank
	// nodes/2 is on a distinct, distant node.
	const ppBytes = 2 << 20
	var latOneWay, bwTime sim.Duration
	far := cfg.Nodes / 2
	if far == 0 {
		far = ranks - 1
	}
	_, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			t0 := r.Now()
			r.Send(far, 0, 1)
			r.Recv(far, 2)
			latOneWay = r.Now().Sub(t0) / 2
			t0 = r.Now()
			r.Send(far, ppBytes, 3)
			r.Recv(far, 4)
			bwTime = r.Now().Sub(t0) / 2
		case far:
			r.Recv(0, 1)
			r.Send(0, 0, 2)
			r.Recv(0, 3)
			r.Send(0, ppBytes, 4)
		}
	})
	if err != nil {
		return nil, err
	}
	r.PingPongLatUS = latOneWay.Microseconds()
	r.PingPongBWGBs = float64(ppBytes) / bwTime.Seconds() / 1e9

	// Random ring: the ranks form a ring in a pseudo-random order and
	// every rank exchanges with both ring neighbours simultaneously;
	// report the mean per-process results.
	cfg2 := core.PartitionConfig(id, machine.VN, ranks)
	cfg2.Fidelity = network.Contention
	cfg2.Shards = shards
	cfg2.Faults = plan
	succ, pred := randRing(ranks, 42)
	const rrBytes = 2 << 20
	times := make([]sim.Duration, ranks)
	latTimes := make([]sim.Duration, ranks)
	_, err = mpi.Execute(cfg2, func(r *mpi.Rank) {
		me := r.ID()
		if succ[me] == me {
			return
		}
		t0 := r.Now()
		r.Sendrecv(succ[me], 1, 0, pred[me], 0)
		latTimes[me] = r.Now().Sub(t0)
		t0 = r.Now()
		r.Sendrecv(succ[me], rrBytes, 1, pred[me], 1)
		times[me] = r.Now().Sub(t0)
	})
	if err != nil {
		return nil, err
	}
	var latSum, bwSum float64
	n := 0
	for i := range times {
		if times[i] == 0 {
			continue
		}
		latSum += latTimes[i].Microseconds()
		bwSum += float64(rrBytes) / times[i].Seconds() / 1e9
		n++
	}
	if n > 0 {
		r.RandRingLatUS = latSum / float64(n)
		r.RandRingBWGBs = bwSum / float64(n)
	}
	return r, nil
}

// randRing returns successor and predecessor maps of a ring visiting
// the ranks in a deterministic pseudo-random order.
func randRing(n int, seed uint64) (succ, pred []int) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := sim.NewRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	succ = make([]int, n)
	pred = make([]int, n)
	for k, r := range order {
		nx := order[(k+1)%n]
		succ[r] = nx
		pred[nx] = r
	}
	return succ, pred
}

// hplNonGEMMFraction is the fraction of HPL time spent in DGEMM on a
// well-tuned run; panel factorization, pivoting and solve account for
// the rest. [cal]
const hplNonGEMMFraction = 0.92

// HPLAnalytic returns the HPL performance in GFlop/s from the standard
// critical-path model: trailing-update DGEMM time, panel broadcast and
// row-swap bandwidth, and per-panel latency.
func HPLAnalytic(id machine.ID, mode machine.Mode, ranks, n, nb int) float64 {
	m := machine.Get(id)
	model := cpu.New(m, mode)
	p, q := nearSquareGrid(ranks)
	flops := kernels.HPLFlops(n)
	tComp := flops / (float64(ranks) * model.DGEMMRate()) / hplNonGEMMFraction

	beta := 1 / math.Min(m.TorusLinkBW, m.NICInjectBW)
	nf := float64(n)
	tBW := 8 * nf * nf * float64(3*p+q) / (2 * float64(p*q)) * beta

	dims := topology.DimsForNodes((ranks + m.RanksPerNode(mode) - 1) / m.RanksPerNode(mode))
	alpha := 2*m.SWLatency + float64(dims[0]+dims[1]+dims[2])/4*m.TorusHopLat
	panels := float64(n) / float64(nb)
	tLat := panels * float64(topology.BinomialRounds(p)+topology.BinomialRounds(q)) * alpha

	return flops / (tComp + tBW + tLat) / 1e9
}

// nearSquareGrid factors ranks into the most-square P x Q grid with
// P <= Q, the usual HPL choice.
func nearSquareGrid(ranks int) (p, q int) {
	p = 1
	for f := 1; f*f <= ranks; f++ {
		if ranks%f == 0 {
			p = f
		}
	}
	return p, ranks / p
}

// HPLSimulated runs an event-driven panel-level HPL on a small
// partition: per panel, the owning column factors it, broadcasts it
// along the process row, rows swap along the column, and everyone
// applies the trailing DGEMM update. It returns GFlop/s and exists to
// validate the analytic model's structure (the two agree within a
// small factor on overlapping configurations).
func HPLSimulated(id machine.ID, mode machine.Mode, p, q, n, nb int) (float64, error) {
	ranks := p * q
	cfg := core.PartitionConfig(id, mode, ranks)
	cfg.Fidelity = network.Contention
	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		myRow := r.ID() % p
		myCol := r.ID() / p
		rowComm := r.World().Split(r, myRow, myCol) // peers across columns
		colComm := r.World().Split(r, myCol, myRow) // peers down my column
		panels := n / nb
		for k := 0; k < panels; k++ {
			remaining := n - k*nb
			ownerCol := k % q
			// Panel factorization on the owning column.
			if myCol == ownerCol {
				rows := remaining / p
				r.Compute(float64(nb)*float64(nb)*float64(rows), 8*float64(nb)*float64(rows),
					machine.ClassDGEMM)
			}
			// Broadcast the panel across the process row.
			panelBytes := 8 * nb * (remaining / p)
			rowComm.Bcast(r, ownerCol, panelBytes)
			// Pivot row swaps down the process column.
			swapBytes := 8 * nb * (remaining / q)
			colComm.Allgather(r, swapBytes/p+1)
			// Trailing-matrix update.
			um := float64(remaining / p)
			un := float64(remaining / q)
			r.Compute(kernels.DGEMMFlops(int(um), int(un), nb), 8*(um*un), machine.ClassDGEMM)
		}
	})
	if err != nil {
		return 0, err
	}
	return kernels.HPLFlops(n) / res.Elapsed.Seconds() / 1e9, nil
}

// FFTAnalytic returns the HPCC global FFT performance in GFlop/s: the
// local FFT work plus three global transposes (the standard
// six-step algorithm's communication).
func FFTAnalytic(id machine.ID, mode machine.Mode, ranks int) float64 {
	m := machine.Get(id)
	model := cpu.New(m, mode)
	// Vector length: ~1/8 of memory as complex128.
	memPerRank := float64(m.MemPerNode) / float64(m.RanksPerNode(mode))
	total := float64(ranks) * memPerRank
	nfft := math.Exp2(math.Floor(math.Log2(total / 8 / 16)))
	flops := 5 * nfft * math.Log2(nfft)
	tComp := flops / (float64(ranks) * model.FlopRate(machine.ClassFFT))
	tComm := 3 * alltoallTime(m, mode, ranks, 16*nfft/float64(ranks)/float64(ranks))
	return flops / (tComp + tComm) / 1e9
}

// PTRANSAnalytic returns the PTRANS rate in GB/s: a global transpose
// bounded by the torus bisection and the per-rank injection rate.
func PTRANSAnalytic(id machine.ID, mode machine.Mode, ranks int) float64 {
	m := machine.Get(id)
	memPerRank := float64(m.MemPerNode) / float64(m.RanksPerNode(mode))
	total := float64(ranks) * memPerRank
	n := math.Sqrt(0.2 * total / 8)
	bytes := 8 * n * n
	t := alltoallTime(m, mode, ranks, bytes/float64(ranks)/float64(ranks))
	return bytes / t / 1e9
}

// RandomAccessGUPS returns the MPI RandomAccess rate in GUPS using the
// hypercube-routing model of the power-of-two-optimized implementation
// the paper also measured: log2(P) exchange stages per bucket of 1024
// updates, plus the local random-update application cost.
func RandomAccessGUPS(id machine.ID, mode machine.Mode, ranks int) float64 {
	m := machine.Get(id)
	model := cpu.New(m, mode)
	const bucket = 1024.0
	dims := topology.DimsForNodes((ranks + m.RanksPerNode(mode) - 1) / m.RanksPerNode(mode))
	alpha := 2*m.SWLatency + float64(dims[0]+dims[1]+dims[2])/4*m.TorusHopLat
	beta := 1 / math.Min(m.TorusLinkBW, m.NICInjectBW)
	stages := float64(topology.BinomialRounds(ranks))
	// Per routing stage each rank forwards ~half its bucket (16 bytes
	// per update in flight: index + value).
	tRoute := stages * (alpha + bucket/2*16*beta)
	// Applying a bucket of updates: one logical op per update at the
	// irregular-access rate.
	tApply := bucket / model.FlopRate(machine.ClassUpdate)
	tRound := tRoute + tApply
	return float64(ranks) * bucket / tRound / 1e9
}

// alltoallTime is the closed-form all-to-all estimate shared by the
// parallel tests: pairwise rounds bounded below by the bisection.
func alltoallTime(m *machine.Machine, mode machine.Mode, ranks int, bytesPerPair float64) float64 {
	nodes := (ranks + m.RanksPerNode(mode) - 1) / m.RanksPerNode(mode)
	dims := topology.DimsForNodes(nodes)
	tor := topology.NewTorus(dims)
	alpha := 2*m.SWLatency + float64(dims[0]+dims[1]+dims[2])/4*m.TorusHopLat
	beta := 1 / math.Min(m.TorusLinkBW, m.NICInjectBW)
	p := float64(ranks)
	perRank := (p - 1) * (alpha + bytesPerPair*beta)
	bisBW := float64(tor.BisectionLinks()) * m.TorusLinkBW * m.BisectionDerate
	bisection := p * (p - 1) * bytesPerPair / 2 / bisBW
	return math.Max(perRank, bisection)
}

// CollBytes is the payload of the collective micro-benchmarks in
// CollBench: the broadcast and allreduce buffer size in bytes.
const CollBytes = 8192

// collIters is the timed repetitions per collective in CollBench.
const collIters = 4

// CollResults reports the simulated collective micro-benchmarks and
// the algorithm each one ran (from the machine's selection table, or
// the forced override).
type CollResults struct {
	BarrierUS     float64
	BcastUS       float64
	AllreduceUS   float64
	BarrierAlgo   string
	BcastAlgo     string
	AllreduceAlgo string
}

// CollBench times barrier, broadcast and allreduce (CollBytes payload,
// double-precision operands) on the simulated partition in VN mode.
// A non-nil coll map forces algorithms per op (see mpi.ParseCollSpec);
// an override ineligible for the world communicator falls back to the
// machine's selection table, and the reported algorithm names reflect
// what actually ran.
func CollBench(id machine.ID, ranks int, coll map[string]string) (*CollResults, error) {
	cr, _, err := CollBenchObserved(id, ranks, coll, nil)
	return cr, err
}

// CollBenchObserved is CollBench with an optional observability probe
// attached to the run (nil for none); it also returns the raw
// simulation result so callers can read the probe's views back.
func CollBenchObserved(id machine.ID, ranks int, coll map[string]string, pb obs.Probe) (*CollResults, *mpi.Result, error) {
	return CollBenchFaulty(id, ranks, coll, nil, pb)
}

// CollBenchFaulty is CollBenchObserved with a deterministic fault plan
// injected into the partition: link faults perturb the collectives,
// node kills abort the run with *mpi.RankFailure — or, with recovery
// enabled, drop the dead ranks and charge the rebuild to the timings.
func CollBenchFaulty(id machine.ID, ranks int, coll map[string]string, plan *fault.Plan, pb obs.Probe) (*CollResults, *mpi.Result, error) {
	return CollBenchFaultySharded(id, ranks, coll, plan, pb, 0)
}

// CollBenchFaultySharded is CollBenchFaulty with an explicit
// kernel-shard request (see SingleAndEPSharded for why the request is
// a parameter and what it currently does).
func CollBenchFaultySharded(id machine.ID, ranks int, coll map[string]string, plan *fault.Plan, pb obs.Probe, shards int) (*CollResults, *mpi.Result, error) {
	m := machine.Get(id)
	cfg := core.PartitionConfig(id, machine.VN, ranks)
	cfg.Fidelity = network.Contention
	cfg.Shards = shards
	cfg.Coll = coll
	cfg.Faults = plan
	cfg.Probe = pb
	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		// Untimed barriers between phases keep one phase's stragglers
		// from contending with the next phase's traffic.
		w := r.World()
		w.Barrier(r)
		r.TimerStart("barrier")
		for i := 0; i < collIters; i++ {
			w.Barrier(r)
		}
		r.TimerStop("barrier")
		r.TimerStart("bcast")
		for i := 0; i < collIters; i++ {
			w.Bcast(r, 0, CollBytes)
		}
		r.TimerStop("bcast")
		w.Barrier(r)
		r.TimerStart("allreduce")
		for i := 0; i < collIters; i++ {
			w.Allreduce(r, CollBytes, true)
		}
		r.TimerStop("allreduce")
	})
	if err != nil {
		return nil, nil, err
	}
	return &CollResults{
		BarrierUS:     res.MaxTimer("barrier").Microseconds() / collIters,
		BcastUS:       res.MaxTimer("bcast").Microseconds() / collIters,
		AllreduceUS:   res.MaxTimer("allreduce").Microseconds() / collIters,
		BarrierAlgo:   chosenAlgo(m, coll, "barrier", 0, ranks),
		BcastAlgo:     chosenAlgo(m, coll, "bcast", CollBytes, ranks),
		AllreduceAlgo: chosenAlgo(m, coll, "allreduce", CollBytes, ranks),
	}, res, nil
}

// chosenAlgo names the algorithm a world collective of the given shape
// runs: the eligible override, else the selection table's pick.
func chosenAlgo(m *machine.Machine, coll map[string]string, op string, bytes, ranks int) string {
	if name, ok := coll[op]; ok && mpi.AlgoEligible(m, op, name, bytes, ranks, true, true) {
		return name
	}
	return mpi.SelectCollAlgo(m, op, bytes, ranks, true, true)
}
