package calib

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/stats"
)

// Options configures a fit.
type Options struct {
	// Perturb displaces each free parameter from its catalog value by a
	// seeded uniform factor in [1-Perturb, 1+Perturb] before the search
	// starts. Zero starts from the catalog itself (the search then only
	// polishes). The perturb-and-recover discipline is the fit's own
	// validation: if the search cannot find its way back to the paper's
	// tables from a displaced start, the model is under-constrained.
	Perturb float64
	// Seed drives the perturbation draws.
	Seed uint64
	// MaxEvals caps loss evaluations (0 = the default budget).
	MaxEvals int
}

// DefaultFitOptions is the standard perturb-and-recover fit: every
// free parameter displaced by a seeded ±10% before the search, so the
// report demonstrates recovery rather than a no-op polish. The paper
// harness (-exp calib) and the calib job kind both run it.
func DefaultFitOptions() Options { return Options{Perturb: 0.10, Seed: 7} }

// Search schedule: multiplicative coordinate descent. Each level tries
// scaling every parameter by (1+step) and 1/(1+step), keeping strict
// improvements, and repeats until a full pass over the parameters
// moves nothing; then the step shrinks.
var descentSteps = []float64{0.12, 0.04, 0.015}

const (
	passesPerLevel  = 2
	defaultMaxEvals = 400
)

// ParamValue is one fitted parameter's trajectory, in display units.
type ParamValue struct {
	Name    string
	Unit    string
	Catalog float64
	Start   float64
	Fitted  float64
}

// FitResult is the outcome of a calibration fit.
type FitResult struct {
	ID        machine.ID
	Params    []ParamValue
	Residuals []Residual
	StartLoss float64
	Loss      float64
	Evals     int

	fitted *machine.Machine
}

// FittedMachine returns a clone of the fitted machine model.
func (f *FitResult) FittedMachine() *machine.Machine { return f.fitted.Clone() }

// Fit calibrates machine id against its paper targets: it perturbs the
// catalog parameters per Options, then runs the coordinate-descent
// search back toward the published numbers. Deterministic for fixed
// options at any worker count.
func Fit(id machine.ID, o Options) (*FitResult, error) {
	cat, err := machine.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	params, err := ParamsFor(id)
	if err != nil {
		return nil, err
	}
	targets, err := TargetsFor(id)
	if err != nil {
		return nil, err
	}
	start := cat.Clone()
	if o.Perturb > 0 {
		rng := sim.NewRNG(o.Seed ^ 0x9e3779b97f4a7c15)
		for _, p := range params {
			f := 1 + o.Perturb*(2*rng.Float64()-1)
			p.Set(start, p.Get(start)*f)
		}
	}
	res, err := FitModel(start, params, targets, o)
	if err != nil {
		return nil, err
	}
	res.ID = id
	for i := range res.Params {
		res.Params[i].Catalog = params[i].Get(cat) * params[i].Scale
	}
	return res, nil
}

// FitModel runs the coordinate-descent search from an explicit
// starting model — exposed so tests can verify convergence on
// synthetic targets with a known optimum. The start machine is not
// mutated.
func FitModel(start *machine.Machine, params []Param, targets []Target, o Options) (*FitResult, error) {
	maxEvals := o.MaxEvals
	if maxEvals <= 0 {
		maxEvals = defaultMaxEvals
	}
	cur := start.Clone()
	res := &FitResult{}

	eval := func(m *machine.Machine) (float64, []Residual, error) {
		res.Evals++
		rs, err := evalTargets(m, targets)
		if err != nil {
			return 0, nil, err
		}
		loss := 0.0
		for i, r := range rs {
			e := r.RelErr()
			loss += targets[i].Weight * e * e
		}
		return loss, rs, nil
	}

	best, bestRs, err := eval(cur)
	if err != nil {
		return nil, err
	}
	res.StartLoss = best

	for _, step := range descentSteps {
		for pass := 0; pass < passesPerLevel; pass++ {
			improved := false
			for _, p := range params {
				if res.Evals >= maxEvals {
					break
				}
				v := p.Get(cur)
				for _, cand := range []float64{v * (1 + step), v / (1 + step)} {
					p.Set(cur, cand)
					if p.Get(cur) == v { // clamp made it a no-op
						continue
					}
					loss, rs, err := eval(cur)
					if err != nil {
						return nil, err
					}
					if loss < best {
						best, bestRs = loss, rs
						improved = true
						break // keep the move, next parameter
					}
					p.Set(cur, v) // reject
				}
			}
			if !improved {
				break
			}
		}
	}

	res.Loss = best
	res.Residuals = bestRs
	res.fitted = cur
	res.Params = make([]ParamValue, len(params))
	for i, p := range params {
		res.Params[i] = ParamValue{
			Name:  p.Name,
			Unit:  p.Unit,
			Start: p.Get(start) * p.Scale,
			// Catalog is filled by Fit; FitModel alone has no catalog
			// reference, so it mirrors the start.
			Catalog: p.Get(start) * p.Scale,
			Fitted:  p.Get(cur) * p.Scale,
		}
	}
	return res, nil
}

// ParamTable renders the fit's parameter trajectory: catalog value,
// perturbed start, fitted value, and the fitted deviation from the
// catalog in percent.
func (f *FitResult) ParamTable() *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("%s calibration fit (loss %.3g -> %.3g, %d evals)", f.ID, f.StartLoss, f.Loss, f.Evals),
		"param", "unit", "catalog", "start", "fitted", "vs catalog %")
	for _, p := range f.Params {
		dev := 0.0
		if p.Catalog != 0 {
			dev = 100 * (p.Fitted - p.Catalog) / p.Catalog
		}
		tb.AddRow(p.Name, p.Unit,
			stats.FormatG(p.Catalog), stats.FormatG(p.Start), stats.FormatG(p.Fitted),
			fmt.Sprintf("%+.2f", dev))
	}
	return tb
}

// ResidualTable renders the fitted model's residuals.
func (f *FitResult) ResidualTable() *stats.Table {
	return ResidualTable(fmt.Sprintf("%s fitted-model residuals", f.ID), f.Residuals)
}
