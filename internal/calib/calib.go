// Package calib fits the simulator's machine models to the paper's
// published numbers and quantifies how well they agree.
//
// The machine catalog (internal/machine) annotates every parameter as
// either [T1] — taken directly from the paper's Table 1 — or [cal] —
// chosen so the simulated micro-benchmarks land on the paper's
// measurements. This package closes that loop mechanically: it defines
// the calibration targets (ping-pong latency and bandwidth, the
// collective micro-benchmarks, DGEMM, a halo exchange), evaluates the
// model against them, and runs a deterministic seeded parameter search
// (multiplicative coordinate descent over the [cal] parameters) that
// recovers a perturbed model to within the paper's tables. The fit
// report shows, for every free parameter, the catalog value, the
// perturbed starting point, and the fitted value — and, for every
// target, the paper value, the model value, and the residual.
//
// The search is exact-replay deterministic: same options, same result,
// at any worker count, because target evaluations go through
// runner.Sweep (input-order results) and every candidate step is
// accepted or rejected sequentially.
package calib

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/runner"
	"bgpsim/internal/stats"
)

// Machines lists the catalog entries with calibration target sets: the
// two machines whose micro-benchmarks the paper tabulates side by side.
func Machines() []machine.ID {
	return []machine.ID{machine.BGP, machine.XT4QC}
}

// Residual is one calibration target's model-vs-paper comparison.
type Residual struct {
	Name  string
	Unit  string
	Kind  string // "micro" or "app"
	Paper float64
	Model float64
}

// RelErr returns the signed relative error of the model value.
func (r Residual) RelErr() float64 { return (r.Model - r.Paper) / r.Paper }

// Residuals evaluates machine id's calibration targets against an
// explicit model m (usually a fitted or perturbed clone of the catalog
// machine). Targets evaluate concurrently on the runner pool; results
// come back in target order.
func Residuals(id machine.ID, m *machine.Machine) ([]Residual, error) {
	targets, err := TargetsFor(id)
	if err != nil {
		return nil, err
	}
	return evalTargets(m, targets)
}

func evalTargets(m *machine.Machine, targets []Target) ([]Residual, error) {
	return runner.Sweep(targets, func(t Target) (Residual, error) {
		v, err := t.Eval(m)
		if err != nil {
			return Residual{}, fmt.Errorf("calib: target %s: %w", t.Name, err)
		}
		return Residual{Name: t.Name, Unit: t.Unit, Kind: t.Kind, Paper: t.Paper, Model: v}, nil
	})
}

// ResidualTable renders residuals as a table: paper value, model value,
// and the signed relative error.
func ResidualTable(title string, rs []Residual) *stats.Table {
	tb := stats.NewTable(title, "target", "kind", "unit", "paper", "model", "err %")
	for _, r := range rs {
		tb.AddRow(r.Name, r.Kind, r.Unit,
			stats.FormatG(r.Paper), stats.FormatG(r.Model),
			fmt.Sprintf("%+.2f", 100*r.RelErr()))
	}
	return tb
}
