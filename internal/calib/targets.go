package calib

import (
	"fmt"

	"bgpsim/internal/cpu"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// Target is one calibration objective: a paper-published number and an
// evaluator that produces the model's prediction for it. Weight sets
// the target's share of the fit loss (sum of weighted squared relative
// errors).
type Target struct {
	Name   string
	Unit   string
	Kind   string // "micro" or "app"
	Paper  float64
	Weight float64
	Eval   func(*machine.Machine) (float64, error)
}

// calibRanks sizes the calibration partitions: large enough that the
// collectives and the halo exchange exercise multi-hop routes, small
// enough that a fit's ~10^2 loss evaluations stay fast.
const calibRanks = 32

// paperValues holds the published target numbers per machine, keyed by
// target name. The BG/P column follows the paper's micro-benchmark
// rows: ≈2.8 us ping-pong latency, a single 425 MB/s torus link
// limiting the pair bandwidth, tree/interrupt-network collectives in
// the one-microsecond range, and ESSL DGEMM at 2.96 GFlop/s. The
// XT4/QC column shows the SeaStar2's opposite trade — five times the
// pair bandwidth, twice the latency, software collectives an order of
// magnitude slower — and ACML DGEMM at 7.5 GFlop/s. The halo-exchange
// row anchors the fit on an application proxy so the search cannot
// trade micro-benchmark accuracy for nonsense elsewhere.
var paperValues = map[machine.ID]map[string]float64{
	machine.BGP: {
		"pingpong-lat":  2.8,  // us
		"pingpong-bw":   0.42, // GB/s
		"barrier":       1.3,  // us
		"allreduce-8B":  1.0,  // us
		"bcast-1MB":     1240, // us
		"dgemm":         2.96, // GFlop/s
		"halo-exchange": 28.5, // ms
	},
	machine.XT4QC: {
		"pingpong-lat":  5.5,  // us
		"pingpong-bw":   2.1,  // GB/s
		"barrier":       31,   // us
		"allreduce-8B":  33,   // us
		"bcast-1MB":     1730, // us
		"dgemm":         7.5,  // GFlop/s
		"halo-exchange": 6.4,  // ms
	},
}

// TargetsFor returns machine id's calibration target set.
func TargetsFor(id machine.ID) ([]Target, error) {
	pv, ok := paperValues[id]
	if !ok {
		return nil, fmt.Errorf("calib: no calibration targets for machine %q (have %v)", id, Machines())
	}
	targets := []Target{
		{Name: "pingpong-lat", Unit: "us", Kind: "micro", Weight: 1, Eval: func(m *machine.Machine) (float64, error) {
			lat, _, err := PingPong(m, nil, 0)
			return lat, err
		}},
		{Name: "pingpong-bw", Unit: "GB/s", Kind: "micro", Weight: 1, Eval: func(m *machine.Machine) (float64, error) {
			_, bw, err := PingPong(m, nil, 0)
			return bw, err
		}},
		{Name: "barrier", Unit: "us", Kind: "micro", Weight: 1, Eval: func(m *machine.Machine) (float64, error) {
			b, _, _, err := collectives(m)
			return b, err
		}},
		{Name: "allreduce-8B", Unit: "us", Kind: "micro", Weight: 1, Eval: func(m *machine.Machine) (float64, error) {
			_, a, _, err := collectives(m)
			return a, err
		}},
		{Name: "bcast-1MB", Unit: "us", Kind: "micro", Weight: 1, Eval: func(m *machine.Machine) (float64, error) {
			_, _, b, err := collectives(m)
			return b, err
		}},
		{Name: "dgemm", Unit: "GFlop/s", Kind: "micro", Weight: 1, Eval: func(m *machine.Machine) (float64, error) {
			return cpu.New(m, machine.VN).DGEMMRate() / 1e9, nil
		}},
		{Name: "halo-exchange", Unit: "ms", Kind: "app", Weight: 2, Eval: func(m *machine.Machine) (float64, error) {
			return HaloExchange(m, nil, 0)
		}},
	}
	for i := range targets {
		targets[i].Paper = pv[targets[i].Name]
	}
	return targets, nil
}

// partitionCfg is core.PartitionConfig for an explicit machine model
// (the fit substitutes mutated clones that are not in the catalog).
func partitionCfg(m *machine.Machine, mode machine.Mode, ranks int) mpi.Config {
	rpn := m.RanksPerNode(mode)
	nodes := (ranks + rpn - 1) / rpn
	return mpi.Config{Machine: m, Nodes: nodes, Mode: mode, Ranks: ranks}
}

// PingPong measures the HPCC-style ping-pong pair on the model: 0-byte
// one-way latency (microseconds) and 2 MB bandwidth (GB/s) between
// rank 0 and a rank half the partition away, at contention fidelity.
// The optional plan injects faults or per-node variability; shards is
// the kernel-shard request (contention falls back to serial, so output
// is byte-identical at any value).
func PingPong(m *machine.Machine, plan *fault.Plan, shards int) (latUS, bwGBs float64, err error) {
	cfg := partitionCfg(m, machine.VN, calibRanks)
	cfg.Fidelity = network.Contention
	cfg.Shards = shards
	cfg.Faults = plan
	const ppBytes = 2 << 20
	far := cfg.Nodes / 2
	if far == 0 {
		far = cfg.Ranks - 1
	}
	var latOneWay, bwTime sim.Duration
	_, err = mpi.Execute(cfg, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			t0 := r.Now()
			r.Send(far, 0, 1)
			r.Recv(far, 2)
			latOneWay = r.Now().Sub(t0) / 2
			t0 = r.Now()
			r.Send(far, ppBytes, 3)
			r.Recv(far, 4)
			bwTime = r.Now().Sub(t0) / 2
		case far:
			r.Recv(0, 1)
			r.Send(0, 0, 2)
			r.Recv(0, 3)
			r.Send(0, ppBytes, 4)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return latOneWay.Microseconds(), float64(ppBytes) / bwTime.Seconds() / 1e9, nil
}

// collectives measures the collective micro-benchmarks on the model:
// barrier, 8-byte allreduce, and 1 MB broadcast, all in microseconds
// as seen by rank 0 of a calibRanks-rank VN partition.
func collectives(m *machine.Machine) (barrierUS, allreduceUS, bcastUS float64, err error) {
	cfg := partitionCfg(m, machine.VN, calibRanks)
	cfg.Fidelity = network.Contention
	var tb, ta, tc sim.Duration
	_, err = mpi.Execute(cfg, func(r *mpi.Rank) {
		w := r.World()
		w.Barrier(r) // settle start-up skew
		t0 := r.Now()
		w.Barrier(r)
		t1 := r.Now()
		w.Allreduce(r, 8, true)
		t2 := r.Now()
		w.Bcast(r, 0, 1<<20)
		t3 := r.Now()
		if r.ID() == 0 {
			tb, ta, tc = t1.Sub(t0), t2.Sub(t1), t3.Sub(t2)
		}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return tb.Microseconds(), ta.Microseconds(), tc.Microseconds(), nil
}

// HaloExchange runs the application-proxy target: an 8x4 processor
// grid exchanging 64 KiB faces with its four torus neighbours and
// smoothing a stencil block for a few iterations, at analytic
// fidelity. It returns the elapsed virtual time in milliseconds. The
// optional plan composes faults/variability in; shards requests the
// sharded kernel (the configuration is shard-eligible, so results are
// byte-identical at any request).
func HaloExchange(m *machine.Machine, plan *fault.Plan, shards int) (float64, error) {
	cfg := partitionCfg(m, machine.VN, calibRanks)
	cfg.Fidelity = network.Analytic
	cfg.Shards = shards
	cfg.Faults = plan
	const (
		px, py = 8, 4
		iters  = 4
		bytes  = 64 << 10
	)
	res, err := mpi.Execute(cfg, func(r *mpi.Rank) {
		me := r.ID()
		x, y := me%px, me/px
		at := func(i, j int) int { return ((j+py)%py)*px + (i+px)%px }
		for it := 0; it < iters; it++ {
			r.Compute(2e6, 1.5e6, machine.ClassStencil)
			reqs := []*mpi.Request{
				r.Irecv(at(x-1, y), it), r.Irecv(at(x+1, y), it),
				r.Irecv(at(x, y-1), it), r.Irecv(at(x, y+1), it),
				r.Isend(at(x-1, y), bytes, it), r.Isend(at(x+1, y), bytes, it),
				r.Isend(at(x, y-1), bytes, it), r.Isend(at(x, y+1), bytes, it),
			}
			r.Waitall(reqs...)
		}
	})
	if err != nil {
		return 0, err
	}
	return res.Elapsed.Seconds() * 1e3, nil
}
