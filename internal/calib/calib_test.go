package calib

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"bgpsim/internal/machine"
)

// The catalog machines must already sit on the paper's tables: every
// calibration target within 10%, micro targets within 5%.
func TestCatalogResiduals(t *testing.T) {
	for _, id := range Machines() {
		rs, err := Residuals(id, machine.Get(id))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rs) < 6 {
			t.Fatalf("%s: only %d targets", id, len(rs))
		}
		for _, r := range rs {
			lim := 0.10
			if r.Kind == "micro" {
				lim = 0.05
			}
			if e := math.Abs(r.RelErr()); e > lim {
				t.Errorf("%s %s: model %g vs paper %g %s (err %.1f%%, limit %.0f%%)",
					id, r.Name, r.Model, r.Paper, r.Unit, 100*e, 100*lim)
			}
		}
	}
}

func TestTargetsForUnknownMachine(t *testing.T) {
	if _, err := TargetsFor(machine.BGL); err == nil {
		t.Fatal("TargetsFor(BG/L) should fail: no target set")
	}
	if _, err := Residuals("nope", nil); err == nil {
		t.Fatal("Residuals(nope) should fail")
	}
}

// FitModel must walk back to a known optimum: targets generated from
// the catalog machine itself, start displaced by ±10%.
func TestFitModelRecoversSyntheticOptimum(t *testing.T) {
	id := machine.BGP
	cat := machine.Get(id)
	params, err := ParamsFor(id)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic targets: each free parameter read back directly, paper
	// value = the catalog's own value. The optimum is exactly the
	// catalog and the loss there is zero.
	var targets []Target
	for _, p := range params {
		p := p
		targets = append(targets, Target{
			Name: p.Name, Unit: p.Unit, Kind: "micro", Weight: 1,
			Paper: p.Get(cat),
			Eval:  func(m *machine.Machine) (float64, error) { return p.Get(m), nil },
		})
	}
	start := cat.Clone()
	factors := []float64{1.10, 0.91, 1.08, 0.92, 1.09, 0.90}
	for i, p := range params {
		p.Set(start, p.Get(start)*factors[i%len(factors)])
	}
	res, err := FitModel(start, params, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss >= res.StartLoss {
		t.Fatalf("no improvement: loss %g -> %g", res.StartLoss, res.Loss)
	}
	fitted := res.FittedMachine()
	for _, p := range params {
		got, want := p.Get(fitted), p.Get(cat)
		if e := math.Abs(got-want) / want; e > 0.02 {
			t.Errorf("param %s: fitted %g vs optimum %g (err %.2f%%)", p.Name, got, want, 100*e)
		}
	}
	if res.Evals == 0 || res.Evals > defaultMaxEvals {
		t.Errorf("evals = %d", res.Evals)
	}
}

// Fit must recover a perturbed catalog machine to within the paper's
// tables, deterministically.
func TestFitRecoversAndIsDeterministic(t *testing.T) {
	o := Options{Perturb: 0.10, Seed: 7}
	res, err := Fit(machine.XT4QC, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss >= res.StartLoss {
		t.Fatalf("fit did not improve: %g -> %g", res.StartLoss, res.Loss)
	}
	for _, r := range res.Residuals {
		if e := math.Abs(r.RelErr()); e > 0.10 {
			t.Errorf("fitted residual %s: %.1f%% > 10%%", r.Name, 100*e)
		}
	}
	for _, p := range res.Params {
		if p.Start == p.Catalog {
			t.Errorf("param %s: perturbation did not move the start", p.Name)
		}
	}
	again, err := Fit(machine.XT4QC, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Params, again.Params) || res.Loss != again.Loss || res.Evals != again.Evals {
		t.Errorf("fit is not deterministic: %+v vs %+v", res, again)
	}
}

func TestTables(t *testing.T) {
	res, err := Fit(machine.BGP, Options{Perturb: 0.05, Seed: 3, MaxEvals: 40})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.ParamTable().String()
	for _, want := range []string{"link-bw", "sw-lat", "tree-lat", "catalog", "fitted"} {
		if !strings.Contains(pt, want) {
			t.Errorf("param table missing %q:\n%s", want, pt)
		}
	}
	rt := res.ResidualTable().String()
	for _, want := range []string{"pingpong-lat", "dgemm", "halo-exchange", "err %"} {
		if !strings.Contains(rt, want) {
			t.Errorf("residual table missing %q:\n%s", want, rt)
		}
	}
}
