package calib

import (
	"fmt"

	"bgpsim/internal/machine"
)

// Param is one free parameter of the fit: an accessor pair over the
// machine struct plus display metadata. Get and Set work in SI units;
// Scale converts to the display unit for tables.
type Param struct {
	Name  string
	Unit  string
	Scale float64 // display = SI * Scale
	Max   float64 // upper clamp applied by Set (0 = none)
	Get   func(*machine.Machine) float64
	Set   func(*machine.Machine, float64)
}

func clamped(v, max float64) float64 {
	if max > 0 && v > max {
		return max
	}
	return v
}

// ParamsFor returns the fit's free parameters for a machine: the
// [cal]-annotated interconnect and software constants the paper does
// not print directly, plus the DGEMM efficiency. Tree latency joins
// the set only on machines with a collective tree network.
func ParamsFor(id machine.ID) ([]Param, error) {
	m, err := machine.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	ps := []Param{
		{
			Name: "link-bw", Unit: "GB/s", Scale: 1e-9,
			Get: func(m *machine.Machine) float64 { return m.TorusLinkBW },
			Set: func(m *machine.Machine, v float64) { m.TorusLinkBW = v },
		},
		{
			Name: "hop-lat", Unit: "ns", Scale: 1e9,
			Get: func(m *machine.Machine) float64 { return m.TorusHopLat },
			Set: func(m *machine.Machine, v float64) { m.TorusHopLat = v },
		},
		{
			Name: "inject-bw", Unit: "GB/s", Scale: 1e-9,
			Get: func(m *machine.Machine) float64 { return m.NICInjectBW },
			Set: func(m *machine.Machine, v float64) { m.NICInjectBW = v },
		},
		{
			Name: "sw-lat", Unit: "us", Scale: 1e6,
			Get: func(m *machine.Machine) float64 { return m.SWLatency },
			Set: func(m *machine.Machine, v float64) { m.SWLatency = v },
		},
		{
			Name: "dgemm-eff", Unit: "frac", Scale: 1, Max: 0.98,
			Get: func(m *machine.Machine) float64 { return m.Eff[machine.ClassDGEMM] },
			Set: func(m *machine.Machine, v float64) { m.Eff[machine.ClassDGEMM] = clamped(v, 0.98) },
		},
	}
	if m.HasTree {
		ps = append(ps, Param{
			Name: "tree-lat", Unit: "ns", Scale: 1e9,
			Get: func(m *machine.Machine) float64 { return m.TreeLat },
			Set: func(m *machine.Machine, v float64) { m.TreeLat = v },
		})
	}
	return ps, nil
}
