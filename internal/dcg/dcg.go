// Package dcg is a distributed conjugate-gradient solver running ON
// the simulator with real data — the executable ground truth behind
// the POP barotropic model: a 2-D Laplacian system is partitioned into
// row stripes, each iteration performs a real halo exchange of
// boundary rows, a local matvec, and global reductions whose scalar
// values travel as message payloads. Both the standard CG (two
// reductions per iteration) and the Chronopoulos-Gear variant (one
// fused reduction) are implemented, and the solutions are verified
// against the serial kernels.
package dcg

import (
	"fmt"
	"math"

	"bgpsim/internal/core"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
)

// Config describes a distributed CG solve of the 2-D Laplacian on an
// nx x ny grid (Dirichlet boundaries), decomposed into nx-row stripes.
type Config struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	NX, NY  int
	Tol     float64
	MaxIter int
	// Fused selects the Chronopoulos-Gear single-reduction variant.
	Fused bool
}

// Result reports the solve.
type Result struct {
	X              []float64 // gathered solution (rank 0)
	Iterations     int
	Residual       float64
	VirtualSeconds float64
	// Reductions is the number of global allreduce operations issued —
	// the latency-critical count the C-G variant halves.
	Reductions int64
}

// stripe holds one rank's rows [r0, r1) of the grid plus halo rows.
type stripe struct {
	nx, ny, r0, r1 int
	// vectors indexed [row-r0+1][col]: one halo row above and below.
	x, r, p, s, u, ap [][]float64
}

func newStripe(nx, ny, r0, r1 int) *stripe {
	alloc := func() [][]float64 {
		v := make([][]float64, r1-r0+2)
		for i := range v {
			v[i] = make([]float64, ny)
		}
		return v
	}
	return &stripe{nx: nx, ny: ny, r0: r0, r1: r1,
		x: alloc(), r: alloc(), p: alloc(), s: alloc(), u: alloc(), ap: alloc()}
}

// matvec computes out = A v for the 5-point Laplacian using the halo
// rows of v (which must be current).
func (st *stripe) matvec(out, v [][]float64) {
	for gr := st.r0; gr < st.r1; gr++ {
		i := gr - st.r0 + 1
		for j := 0; j < st.ny; j++ {
			s := 4 * v[i][j]
			if j > 0 {
				s -= v[i][j-1]
			}
			if j < st.ny-1 {
				s -= v[i][j+1]
			}
			if gr > 0 {
				s -= v[i-1][j]
			}
			if gr < st.nx-1 {
				s -= v[i+1][j]
			}
			out[i][j] = s
		}
	}
}

func (st *stripe) dot(a, b [][]float64) float64 {
	s := 0.0
	for i := 1; i <= st.r1-st.r0; i++ {
		for j := 0; j < st.ny; j++ {
			s += a[i][j] * b[i][j]
		}
	}
	return s
}

// exchangeHalo sends the stripe's edge rows of v to the neighbouring
// ranks and installs their edges as halo rows.
func exchangeHalo(r *mpi.Rank, st *stripe, v [][]float64, tag int) {
	p := r.Size()
	me := r.ID()
	rows := st.r1 - st.r0
	bytes := st.ny * 8
	var reqs []*mpi.Request
	if me > 0 {
		reqs = append(reqs, r.IsendPayload(me-1, bytes, tag, append([]float64(nil), v[1]...)))
	}
	if me < p-1 {
		reqs = append(reqs, r.IsendPayload(me+1, bytes, tag+1, append([]float64(nil), v[rows]...)))
	}
	if me > 0 {
		_, payload := r.RecvPayload(me-1, tag+1)
		copy(v[0], payload.([]float64))
	}
	if me < p-1 {
		_, payload := r.RecvPayload(me+1, tag)
		copy(v[rows+1], payload.([]float64))
	}
	r.Waitall(reqs...)
}

// allreduceSum reduces scalar values across all ranks: the timing uses
// the collective model, the values travel via a payload gather+bcast
// (rank 0 combines and redistributes).
func allreduceSum(r *mpi.Rank, vals []float64, reductions *int64) []float64 {
	// Timing: one allreduce of the scalar payload.
	r.World().Allreduce(r, len(vals)*8, true)
	*reductions++
	// Values: gather at 0, sum, broadcast back (payload path).
	p := r.Size()
	me := r.ID()
	if p == 1 {
		return vals
	}
	const tagG, tagB = 7001, 7002
	if me != 0 {
		r.SendPayload(0, len(vals)*8, tagG, vals)
		_, payload := r.RecvPayload(0, tagB)
		return payload.([]float64)
	}
	sum := append([]float64(nil), vals...)
	for q := 1; q < p; q++ {
		_, payload := r.RecvPayload(mpi.AnySource, tagG)
		for i, v := range payload.([]float64) {
			sum[i] += v
		}
	}
	for q := 1; q < p; q++ {
		r.SendPayload(q, len(sum)*8, tagB, sum)
	}
	return sum
}

// Run solves the system with b = 1 everywhere.
func Run(cfg Config) (*Result, error) {
	if cfg.Procs <= 0 || cfg.NX <= 0 || cfg.NY <= 0 {
		return nil, fmt.Errorf("dcg: bad config %+v", cfg)
	}
	if cfg.NX%cfg.Procs != 0 {
		return nil, fmt.Errorf("dcg: %d ranks do not divide %d rows", cfg.Procs, cfg.NX)
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 10 * cfg.NX * cfg.NY
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-10
	}
	rowsPer := cfg.NX / cfg.Procs

	mcfg := core.PartitionConfig(cfg.Machine, cfg.Mode, cfg.Procs)
	var out Result
	res, err := mpi.Execute(mcfg, func(r *mpi.Rank) {
		me := r.ID()
		st := newStripe(cfg.NX, cfg.NY, me*rowsPer, (me+1)*rowsPer)
		// b = 1: r = b, p = b, x = 0.
		for i := 1; i <= rowsPer; i++ {
			for j := 0; j < st.ny; j++ {
				st.r[i][j] = 1
				st.p[i][j] = 1
			}
		}
		flopsPerIter := float64(rowsPer*st.ny) * 14 // matvec + axpys
		bytesPerIter := float64(rowsPer*st.ny) * 8 * 6

		var reductions int64
		iters := 0
		if cfg.Fused {
			iters = runFused(r, st, cfg, rowsPer, flopsPerIter, bytesPerIter, &reductions)
		} else {
			iters = runStandard(r, st, cfg, rowsPer, flopsPerIter, bytesPerIter, &reductions)
		}

		// Gather the solution.
		if me != 0 {
			flat := make([]float64, rowsPer*st.ny)
			for i := 0; i < rowsPer; i++ {
				copy(flat[i*st.ny:], st.x[i+1])
			}
			r.SendPayload(0, len(flat)*8, 7100, flat)
			return
		}
		x := make([]float64, cfg.NX*cfg.NY)
		for i := 0; i < rowsPer; i++ {
			copy(x[i*st.ny:], st.x[i+1])
		}
		for q := 1; q < cfg.Procs; q++ {
			_, payload := r.RecvPayload(q, 7100)
			copy(x[q*rowsPer*st.ny:], payload.([]float64))
		}
		out.X = x
		out.Iterations = iters
		out.Reductions = reductions
	})
	if err != nil {
		return nil, err
	}
	out.VirtualSeconds = res.Elapsed.Seconds()
	out.Residual = residual(cfg, out.X)
	return &out, nil
}

// runStandard is textbook CG: two separate reductions per iteration.
func runStandard(r *mpi.Rank, st *stripe, cfg Config, rowsPer int,
	flops, bytes float64, reductions *int64) int {
	rr := allreduceSum(r, []float64{st.dot(st.r, st.r)}, reductions)[0]
	for it := 1; it <= cfg.MaxIter; it++ {
		exchangeHalo(r, st, st.p, 100+it*4)
		st.matvec(st.ap, st.p)
		r.Compute(flops, bytes, machine.ClassStencil)
		pap := allreduceSum(r, []float64{st.dot(st.p, st.ap)}, reductions)[0]
		alpha := rr / pap
		for i := 1; i <= rowsPer; i++ {
			for j := 0; j < st.ny; j++ {
				st.x[i][j] += alpha * st.p[i][j]
				st.r[i][j] -= alpha * st.ap[i][j]
			}
		}
		rrNew := allreduceSum(r, []float64{st.dot(st.r, st.r)}, reductions)[0]
		if math.Sqrt(rrNew) < cfg.Tol*float64(st.nx*st.ny) {
			return it
		}
		beta := rrNew / rr
		rr = rrNew
		for i := 1; i <= rowsPer; i++ {
			for j := 0; j < st.ny; j++ {
				st.p[i][j] = st.r[i][j] + beta*st.p[i][j]
			}
		}
	}
	return cfg.MaxIter
}

// runFused is the Chronopoulos-Gear variant: one fused reduction per
// iteration carrying both scalars.
func runFused(r *mpi.Rank, st *stripe, cfg Config, rowsPer int,
	flops, bytes float64, reductions *int64) int {
	exchangeHalo(r, st, st.r, 90)
	st.matvec(st.u, st.r)
	sums := allreduceSum(r, []float64{st.dot(st.r, st.r), st.dot(st.r, st.u)}, reductions)
	gamma, delta := sums[0], sums[1]
	alpha := gamma / delta
	beta := 0.0
	for it := 1; it <= cfg.MaxIter; it++ {
		for i := 1; i <= rowsPer; i++ {
			for j := 0; j < st.ny; j++ {
				st.p[i][j] = st.r[i][j] + beta*st.p[i][j]
				st.s[i][j] = st.u[i][j] + beta*st.s[i][j]
				st.x[i][j] += alpha * st.p[i][j]
				st.r[i][j] -= alpha * st.s[i][j]
			}
		}
		exchangeHalo(r, st, st.r, 100+it*4)
		st.matvec(st.u, st.r)
		r.Compute(flops, bytes, machine.ClassStencil)
		sums := allreduceSum(r, []float64{st.dot(st.r, st.r), st.dot(st.r, st.u)}, reductions)
		gammaNew, deltaNew := sums[0], sums[1]
		if math.Sqrt(gammaNew) < cfg.Tol*float64(st.nx*st.ny) {
			return it
		}
		beta = gammaNew / gamma
		alpha = gammaNew / (deltaNew - beta*gammaNew/alpha)
		gamma = gammaNew
	}
	return cfg.MaxIter
}

// residual returns ||Ax - b||_2 for b = 1.
func residual(cfg Config, x []float64) float64 {
	if x == nil {
		return math.Inf(1)
	}
	nx, ny := cfg.NX, cfg.NY
	at := func(i, j int) float64 {
		if i < 0 || i >= nx || j < 0 || j >= ny {
			return 0
		}
		return x[i*ny+j]
	}
	s := 0.0
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			ax := 4*at(i, j) - at(i-1, j) - at(i+1, j) - at(i, j-1) - at(i, j+1)
			d := ax - 1
			s += d * d
		}
	}
	return math.Sqrt(s)
}
