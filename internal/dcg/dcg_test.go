package dcg

import (
	"math"
	"testing"

	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
)

func TestDistributedCGSolves(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res, err := Run(Config{Machine: machine.BGP, Mode: machine.VN,
			Procs: procs, NX: 16, NY: 24, Tol: 1e-11})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.Residual > 1e-6 {
			t.Errorf("procs=%d: residual %g", procs, res.Residual)
		}
		if res.VirtualSeconds <= 0 {
			t.Errorf("procs=%d: no virtual time", procs)
		}
	}
}

func TestMatchesSerialKernel(t *testing.T) {
	res, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN,
		Procs: 4, NX: 12, NY: 12, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	a := kernels.Laplacian2D(12, 12)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	ref := kernels.CG(a, b, 1e-12, 10000)
	for i := range ref.X {
		if math.Abs(ref.X[i]-res.X[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, serial %g", i, res.X[i], ref.X[i])
		}
	}
}

func TestFusedVariantSolvesIdentically(t *testing.T) {
	std, err := Run(Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: 4, NX: 16, NY: 16, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Run(Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: 4, NX: 16, NY: 16, Tol: 1e-12, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range std.X {
		if math.Abs(std.X[i]-fused.X[i]) > 1e-5 {
			t.Fatalf("x[%d]: standard %g vs fused %g", i, std.X[i], fused.X[i])
		}
	}
	if fused.Residual > 1e-6 {
		t.Errorf("fused residual %g", fused.Residual)
	}
}

func TestFusedHalvesReductions(t *testing.T) {
	// The entire point of the Chronopoulos-Gear variant in POP.
	std, err := Run(Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: 4, NX: 16, NY: 16, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Run(Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: 4, NX: 16, NY: 16, Tol: 1e-11, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	perIterStd := float64(std.Reductions) / float64(std.Iterations)
	perIterFused := float64(fused.Reductions) / float64(fused.Iterations)
	if perIterStd < 1.9 || perIterStd > 2.2 {
		t.Errorf("standard CG: %.2f reductions/iter, want ~2", perIterStd)
	}
	if perIterFused > 1.2 {
		t.Errorf("fused CG: %.2f reductions/iter, want ~1", perIterFused)
	}
}

func TestFusedFasterOnLatencyBoundMachine(t *testing.T) {
	// On a machine without a hardware tree, halving the reduction
	// count should shorten the latency-bound solve.
	std, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN,
		Procs: 8, NX: 16, NY: 16, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN,
		Procs: 8, NX: 16, NY: 16, Tol: 1e-11, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	perIterStd := std.VirtualSeconds / float64(std.Iterations)
	perIterFused := fused.VirtualSeconds / float64(fused.Iterations)
	if perIterFused >= perIterStd {
		t.Errorf("fused %.3g s/iter should beat standard %.3g s/iter",
			perIterFused, perIterStd)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 3, NX: 16, NY: 16}); err == nil {
		t.Error("3 ranks do not divide 16 rows")
	}
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 0, NX: 16, NY: 16}); err == nil {
		t.Error("zero procs should fail")
	}
}
