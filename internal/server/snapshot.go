package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"bgpsim/internal/jobspec"
	"bgpsim/internal/sim"
)

// snapshot is a simulation parked mid-run at a chosen virtual time:
// the job's event loop is paused, its rank goroutines blocked, its
// state held in memory. Resume runs it to completion and produces the
// exact document a straight run of the same spec produces (the
// stepwise kernel only chooses pause points, never event order), so a
// resumed snapshot both answers its own request and warms the result
// cache for every later submission of that job. Fork starts a fresh
// session of a (possibly patched) spec and replays it deterministically
// up to the parent's pause point — what-if exploration from a common
// prefix.
type snapshot struct {
	id   string
	mu   sync.Mutex // serializes StepTo/Finish on the session
	sess *jobspec.Session
	doc  []byte // resume result, once produced
}

// snapshotInfo is the wire form of a snapshot's state.
type snapshotInfo struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	NowUs  int64  `json:"now_us"`
	Events uint64 `json:"events"`
	Done   bool   `json:"done"`
}

func (sn *snapshot) info() snapshotInfo {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return snapshotInfo{
		ID:     sn.id,
		Hash:   sn.sess.Hash(),
		NowUs:  int64(sn.sess.Now()) / int64(sim.Microsecond),
		Events: sn.sess.Events(),
		Done:   sn.sess.Done(),
	}
}

// snapshotRequest is the POST /v1/snapshots (and /fork) body.
type snapshotRequest struct {
	Spec json.RawMessage `json:"spec"`
	AtUs int64           `json:"at_us"`
}

// startSnapshot creates and parks a session at the requested virtual
// time, enforcing the snapshot budget.
func (s *Server) startSnapshot(spec jobspec.Spec, atUs int64) (*snapshot, error) {
	sess, err := jobspec.StartSession(spec)
	if err != nil {
		return nil, err
	}
	if atUs > 0 {
		if err := sess.StepTo(sim.Time(atUs) * sim.Time(sim.Microsecond)); err != nil {
			sess.Finish(io.Discard, io.Discard)
			return nil, err
		}
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if len(s.snapshots) >= s.cfg.MaxSnapshots {
		// Unwind the parked goroutines before rejecting.
		go sess.Finish(io.Discard, io.Discard)
		return nil, errSnapshotBudget
	}
	s.snapSeq++
	sn := &snapshot{id: fmt.Sprintf("snap-%d", s.snapSeq), sess: sess}
	s.snapshots[sn.id] = sn
	return sn, nil
}

var errSnapshotBudget = fmt.Errorf("snapshot budget exhausted")

func (s *Server) getSnapshot(id string) *snapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapshots[id]
}

// finishSnapshots runs every parked snapshot to completion so its
// simulation goroutines unwind; called during drain.
func (s *Server) finishSnapshots() {
	s.snapMu.Lock()
	snaps := make([]*snapshot, 0, len(s.snapshots))
	for _, sn := range s.snapshots {
		snaps = append(snaps, sn)
	}
	s.snapshots = make(map[string]*snapshot)
	s.snapMu.Unlock()
	for _, sn := range snaps {
		sn.mu.Lock()
		sn.sess.Finish(io.Discard, io.Discard)
		sn.mu.Unlock()
	}
}

func (s *Server) handleSnapshotCreate(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, "server is draining; not accepting snapshots")
		return
	}
	var req snapshotRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Spec) == 0 {
		httpError(w, http.StatusBadRequest, "missing spec")
		return
	}
	spec, err := jobspec.Decode(req.Spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec.Shards = 0
	sn, err := s.startSnapshot(spec, req.AtUs)
	switch err {
	case nil:
	case errSnapshotBudget:
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sn.info())
}

func (s *Server) handleSnapshotList(w http.ResponseWriter, r *http.Request) {
	s.snapMu.Lock()
	infos := make([]snapshotInfo, 0, len(s.snapshots))
	snaps := make([]*snapshot, 0, len(s.snapshots))
	for _, sn := range s.snapshots {
		snaps = append(snaps, sn)
	}
	s.snapMu.Unlock()
	for _, sn := range snaps {
		infos = append(infos, sn.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	sn := s.getSnapshot(r.PathValue("id"))
	if sn == nil {
		httpError(w, http.StatusNotFound, "unknown snapshot")
		return
	}
	writeJSON(w, http.StatusOK, sn.info())
}

// handleSnapshotResume runs the parked simulation to completion and
// returns the result document — byte-identical to a straight run of
// the spec, and inserted into the result cache under the job's hash so
// later POST /v1/jobs submissions hit. Repeated resumes replay the
// stored document.
func (s *Server) handleSnapshotResume(w http.ResponseWriter, r *http.Request) {
	sn := s.getSnapshot(r.PathValue("id"))
	if sn == nil {
		httpError(w, http.StatusNotFound, "unknown snapshot")
		return
	}
	sn.mu.Lock()
	if sn.doc == nil {
		var stdout, stderr bytes.Buffer
		rr, err := sn.sess.Finish(&stdout, &stderr)
		doc := ResultDoc{
			Hash:   sn.sess.Hash(),
			Spec:   sn.sess.Spec(),
			Stdout: stdout.String(),
			Stderr: stderr.String(),
		}
		if rr != nil {
			for _, a := range rr.Artifacts {
				doc.Artifacts = append(doc.Artifacts, ArtifactDoc{Name: a.Name, Data: a.Data})
			}
		}
		if err != nil {
			doc.Error = err.Error()
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		b, merr := json.Marshal(doc)
		if merr != nil {
			sn.mu.Unlock()
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("marshal result: %v", merr))
			return
		}
		sn.doc = b
		s.cache.Put(doc.Hash, b)
	}
	doc := sn.doc
	sn.mu.Unlock()
	writeDoc(w, doc, "snapshot")
}

// handleSnapshotFork parks a new session at the parent's pause point
// (or an explicit at_us), optionally with a replacement spec — the
// deterministic kernel replays the common prefix identically, so the
// fork is a what-if branch of the parent.
func (s *Server) handleSnapshotFork(w http.ResponseWriter, r *http.Request) {
	parent := s.getSnapshot(r.PathValue("id"))
	if parent == nil {
		httpError(w, http.StatusNotFound, "unknown snapshot")
		return
	}
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, "server is draining; not accepting snapshots")
		return
	}
	var req snapshotRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
			return
		}
	}
	spec := parent.sess.Spec()
	if len(req.Spec) > 0 {
		var err error
		spec, err = jobspec.Decode(req.Spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		spec.Shards = 0
	}
	atUs := req.AtUs
	if atUs <= 0 {
		parent.mu.Lock()
		atUs = int64(parent.sess.Now()) / int64(sim.Microsecond)
		parent.mu.Unlock()
	}
	sn, err := s.startSnapshot(spec, atUs)
	switch err {
	case nil:
	case errSnapshotBudget:
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, sn.info())
}

// handleSnapshotDelete discards a snapshot. The parked simulation is
// finished in the background into discarded writers — rank goroutines
// blocked inside the paused kernel cannot be killed, only run to
// completion — and nothing is cached.
func (s *Server) handleSnapshotDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.snapMu.Lock()
	sn := s.snapshots[id]
	delete(s.snapshots, id)
	s.snapMu.Unlock()
	if sn == nil {
		httpError(w, http.StatusNotFound, "unknown snapshot")
		return
	}
	go func() {
		sn.mu.Lock()
		defer sn.mu.Unlock()
		sn.sess.Finish(io.Discard, io.Discard)
	}()
	w.WriteHeader(http.StatusNoContent)
}
