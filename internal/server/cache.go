// Package server implements the bgpsimd HTTP job service: canonical
// job specs in, deterministic simulation results out, with a
// content-addressed result cache, bounded concurrency with
// backpressure, snapshot/restore of in-flight simulations, and a
// graceful drain for zero-loss shutdown. See docs/SERVER.md for the
// API.
package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of marshaled result documents keyed by
// job hash. The cache stores the exact bytes first marshaled for a job
// and replays them verbatim, so a cache hit's response body is
// byte-identical to the miss that filled it — the observable form of
// the simulator's determinism guarantee.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	hash string
	doc  []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the stored document for hash, marking it most recently
// used. The returned slice is the stored backing array; callers only
// write it to a response, never mutate it.
func (c *resultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).doc, true
}

// Put stores doc under hash, evicting least-recently-used entries
// beyond capacity. Re-putting an existing hash refreshes recency but
// keeps the original bytes: the first document computed for a job is
// the one every later response replays.
func (c *resultCache) Put(hash string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, doc: doc})
	for c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit/miss/eviction counts.
func (c *resultCache) Counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
