package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want a retained as more recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted; want b evicted instead")
	}
	// Re-putting keeps the original bytes.
	c.Put("a", []byte("A2"))
	if doc, _ := c.Get("a"); string(doc) != "A" {
		t.Errorf("re-put replaced stored bytes: %q", doc)
	}
	hits, misses, evictions := c.Counters()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("counters not tracking: hits=%d misses=%d", hits, misses)
	}
}

// newTestServer starts a server and its HTTP front; the caller gets a
// base URL and a cleanup that drains.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	return srv, hs.URL
}

func postJob(t *testing.T, base, body string) ([]byte, string, int) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b, resp.Header.Get("X-Bgpsimd-Cache"), resp.StatusCode
}

const benchJob = `{"kind":"bench","bench":"allreduce","ranks":32,"trace":true,"links":true}`

func TestSubmitCacheReplay(t *testing.T) {
	_, base := newTestServer(t, Config{})
	first, src, code := postJob(t, base, benchJob)
	if code != http.StatusOK || src != "miss" {
		t.Fatalf("first submit: status %d cache %q, want 200 miss", code, src)
	}
	second, src, code := postJob(t, base, benchJob)
	if code != http.StatusOK || src != "hit" {
		t.Fatalf("second submit: status %d cache %q, want 200 hit", code, src)
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit body differs from miss body")
	}
	// The shard request is an execution knob, not part of the job: a
	// sharded resubmission of the same job must hit with the same body.
	third, src, code := postJob(t, base, `{"kind":"bench","bench":"allreduce","ranks":32,"trace":true,"links":true,"shards":4}`)
	if code != http.StatusOK || src != "hit" {
		t.Fatalf("sharded resubmit: status %d cache %q, want 200 hit", code, src)
	}
	if !bytes.Equal(first, third) {
		t.Error("sharded resubmit body differs")
	}

	var doc ResultDoc
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("decode result doc: %v", err)
	}
	if doc.Error != "" {
		t.Fatalf("job failed: %s", doc.Error)
	}
	if !strings.Contains(doc.Stdout, "allreduce") {
		t.Errorf("stdout missing report: %q", doc.Stdout)
	}
	if len(doc.Artifacts) != 2 {
		t.Fatalf("got %d artifacts, want 2", len(doc.Artifacts))
	}

	// Artifact endpoint serves the raw bytes.
	resp, err := http.Get(base + "/v1/jobs/" + doc.Hash + "/artifacts/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: status %d", resp.StatusCode)
	}
	found := false
	for _, a := range doc.Artifacts {
		if a.Name == "trace.json" {
			found = true
			if !bytes.Equal(raw, a.Data) {
				t.Error("artifact endpoint bytes differ from result doc")
			}
		}
	}
	if !found {
		t.Error("result doc has no trace.json artifact")
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	_, base := newTestServer(t, Config{})
	for _, body := range []string{`not json`, `{"kind":"warp"}`, `{"kind":"bench","bogus":1}`} {
		if _, _, code := postJob(t, base, body); code != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, code)
		}
	}
}

// TestConcurrentSwarm hammers a small-cache server with a swarm of
// clients resubmitting a handful of distinct jobs, then checks every
// response for a given job is byte-identical and the cache actually
// cycled (hits and evictions both happened). Run under -race this is
// the server's thread-safety test.
func TestConcurrentSwarm(t *testing.T) {
	srv, base := newTestServer(t, Config{Workers: 4, QueueDepth: 64, CacheEntries: 2})
	jobs := []string{
		`{"kind":"bench","bench":"barrier","ranks":16}`,
		`{"kind":"bench","bench":"allreduce","ranks":16}`,
		`{"kind":"bench","bench":"bcast","ranks":16}`,
	}
	const clients, rounds = 8, 6
	bodies := make([][][]byte, len(jobs))
	for i := range bodies {
		bodies[i] = make([][]byte, 0, clients*rounds)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				j := (c + r) % len(jobs)
				resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(jobs[j]))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
					return
				}
				mu.Lock()
				bodies[j] = append(bodies[j], b)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for j := range jobs {
		for i := 1; i < len(bodies[j]); i++ {
			if !bytes.Equal(bodies[j][0], bodies[j][i]) {
				t.Fatalf("job %d: response %d differs from response 0", j, i)
			}
		}
	}
	st := srv.CurrentStats()
	if st.Cache.Evictions == 0 {
		t.Errorf("no evictions with cache=2 and 3 jobs cycling: %+v", st.Cache)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("no cache hits across %d submissions", clients*rounds)
	}
	if st.Cache.Entries > 2 {
		t.Errorf("cache grew past capacity: %d entries", st.Cache.Entries)
	}
}

func TestRateLimit(t *testing.T) {
	_, base := newTestServer(t, Config{RatePerSec: 0.001, Burst: 2})
	for i := 0; i < 2; i++ {
		if _, _, code := postJob(t, base, benchJob); code != http.StatusOK {
			t.Fatalf("submit %d within burst: status %d", i, code)
		}
	}
	_, _, code := postJob(t, base, benchJob)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit past burst: status %d, want 429", code)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv := New(Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	if _, _, code := postJob(t, hs.URL, benchJob); code != http.StatusOK {
		t.Fatalf("pre-drain submit: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, _, code := postJob(t, hs.URL, `{"kind":"bench","bench":"barrier","ranks":8}`); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", code)
	}
	// Cached results stay readable after drain.
	if _, src, code := postJob(t, hs.URL, benchJob); code != http.StatusServiceUnavailable && src != "hit" {
		t.Errorf("post-drain cached submit: status %d cache %q", code, src)
	}
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "draining") {
		t.Errorf("healthz after drain: %s", b)
	}
	// Drain is idempotent.
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestEventsStream(t *testing.T) {
	_, base := newTestServer(t, Config{})
	body, _, code := postJob(t, base, benchJob)
	if code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	var doc ResultDoc
	json.Unmarshal(body, &doc)
	resp, err := http.Get(base + "/v1/jobs/" + doc.Hash + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(stream), "event: done") {
		t.Errorf("stream missing done event: %s", stream)
	}
}

func TestStatsShape(t *testing.T) {
	_, base := newTestServer(t, Config{})
	postJob(t, base, benchJob)
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Jobs.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Jobs.Completed)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", st.Cache.Entries)
	}
}

const haloJob = `{"kind":"halo","grid_x":8,"grid_y":4,"words":512,"trace":true,"links":true}`

// TestSnapshotRestoreEquivalence is the server-level
// run-to-T-then-restore ≡ straight-run check on a HALO job: park a
// snapshot mid-run, resume it, and require the document to be
// byte-identical to a straight submission's — and to have warmed the
// job cache for later submissions.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	_, baseA := newTestServer(t, Config{})
	straight, _, code := postJob(t, baseA, haloJob)
	if code != http.StatusOK {
		t.Fatalf("straight submit: status %d", code)
	}

	// A second, untouched server: snapshot first, resume, then submit.
	_, baseB := newTestServer(t, Config{})
	resp, err := http.Post(baseB+"/v1/snapshots", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%s,"at_us":50}`, haloJob)))
	if err != nil {
		t.Fatal(err)
	}
	snapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot create: status %d: %s", resp.StatusCode, snapBody)
	}
	var info struct {
		ID     string `json:"id"`
		NowUs  int64  `json:"now_us"`
		Events uint64 `json:"events"`
		Done   bool   `json:"done"`
	}
	if err := json.Unmarshal(snapBody, &info); err != nil {
		t.Fatal(err)
	}
	if info.Done {
		t.Fatalf("snapshot completed at 50us; pick an earlier pause: %s", snapBody)
	}
	if info.Events == 0 {
		t.Error("snapshot at 50us fired no events")
	}

	resp, err = http.Post(baseB+"/v1/snapshots/"+info.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d: %s", resp.StatusCode, resumed)
	}
	if !bytes.Equal(resumed, straight) {
		t.Errorf("resumed document differs from straight run:\n--- straight\n%s\n--- resumed\n%s", straight, resumed)
	}

	// The resume warmed the cache: submitting the job now hits without
	// running anything.
	body, src, code := postJob(t, baseB, haloJob)
	if code != http.StatusOK || src != "hit" {
		t.Fatalf("post-resume submit: status %d cache %q, want 200 hit", code, src)
	}
	if !bytes.Equal(body, straight) {
		t.Error("post-resume submission body differs from straight run")
	}
}

func TestSnapshotForkAndDelete(t *testing.T) {
	_, base := newTestServer(t, Config{})
	resp, err := http.Post(base+"/v1/snapshots", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%s,"at_us":30}`, haloJob)))
	if err != nil {
		t.Fatal(err)
	}
	snapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot create: status %d: %s", resp.StatusCode, snapBody)
	}
	var parent struct {
		ID    string `json:"id"`
		NowUs int64  `json:"now_us"`
	}
	json.Unmarshal(snapBody, &parent)

	// Fork a what-if branch with a larger payload, replayed to the
	// parent's pause point.
	fork := `{"spec":{"kind":"halo","grid_x":8,"grid_y":4,"words":2048,"trace":true,"links":true}}`
	resp, err = http.Post(base+"/v1/snapshots/"+parent.ID+"/fork", "application/json", strings.NewReader(fork))
	if err != nil {
		t.Fatal(err)
	}
	forkBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("fork: status %d: %s", resp.StatusCode, forkBody)
	}
	var child struct {
		ID    string `json:"id"`
		Hash  string `json:"hash"`
		NowUs int64  `json:"now_us"`
	}
	json.Unmarshal(forkBody, &child)
	if child.ID == parent.ID {
		t.Error("fork reused parent id")
	}

	// List shows both; delete the parent; list shows one.
	count := func() int {
		resp, err := http.Get(base + "/v1/snapshots")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var infos []json.RawMessage
		json.NewDecoder(resp.Body).Decode(&infos)
		return len(infos)
	}
	if n := count(); n != 2 {
		t.Fatalf("snapshot list: %d entries, want 2", n)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/snapshots/"+parent.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if n := count(); n != 1 {
		t.Fatalf("snapshot list after delete: %d entries, want 1", n)
	}
	// Resuming the fork still works and caches its own job.
	resp, err = http.Post(base+"/v1/snapshots/"+child.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fork resume: status %d: %s", resp.StatusCode, resumed)
	}
	var doc ResultDoc
	json.Unmarshal(resumed, &doc)
	if doc.Hash != child.Hash {
		t.Errorf("fork resume hash %s, want %s", doc.Hash, child.Hash)
	}
}

func TestSnapshotBudget(t *testing.T) {
	_, base := newTestServer(t, Config{MaxSnapshots: 1})
	mk := func() int {
		resp, err := http.Post(base+"/v1/snapshots", "application/json",
			strings.NewReader(fmt.Sprintf(`{"spec":%s,"at_us":10}`, haloJob)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := mk(); code != http.StatusCreated {
		t.Fatalf("first snapshot: status %d", code)
	}
	if code := mk(); code != http.StatusTooManyRequests {
		t.Fatalf("second snapshot past budget: status %d, want 429", code)
	}
}
