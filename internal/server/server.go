package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bgpsim/internal/jobspec"
)

// Config sizes the server. Zero values take the listed defaults.
type Config struct {
	// Workers is the number of simulations run concurrently (default 2).
	Workers int
	// QueueDepth bounds accepted-but-not-started jobs; a full queue
	// rejects submissions with 429 rather than buffering without limit
	// (default 8).
	QueueDepth int
	// CacheEntries bounds the result cache (default 64 documents).
	CacheEntries int
	// RatePerSec throttles job submissions (token bucket); 0 disables
	// rate limiting.
	RatePerSec float64
	// Burst is the token-bucket depth when rate limiting (default 4).
	Burst int
	// MaxSnapshots bounds concurrently parked snapshots (default 16).
	MaxSnapshots int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.MaxSnapshots <= 0 {
		c.MaxSnapshots = 16
	}
	return c
}

// ResultDoc is the response body for a completed job: the canonical
// spec that identifies it, the exact stdout/stderr bytes the
// equivalent CLI run prints, and the observability artifacts the spec
// requested. A failed run carries Error alongside whatever partial
// output and artifacts the failure produced (a fault-aborted run still
// delivers its truncated trace). Documents are marshaled once when the
// job completes and replayed verbatim ever after.
type ResultDoc struct {
	Hash      string        `json:"hash"`
	Spec      jobspec.Spec  `json:"spec"`
	Stdout    string        `json:"stdout"`
	Stderr    string        `json:"stderr"`
	Artifacts []ArtifactDoc `json:"artifacts,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// ArtifactDoc is one named artifact; Data is base64 in the JSON form.
type ArtifactDoc struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// jobStatus is a job's lifecycle phase.
const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
)

// jobEvent is one lifecycle transition, streamed to /events
// subscribers.
type jobEvent struct {
	Name string // SSE event name: queued, running, done
	Data string // JSON payload
}

// jobState is one in-flight job. After completion the marshaled
// document moves to the cache and the state is forgotten.
type jobState struct {
	hash string
	spec jobspec.Spec // identity form: canonical with Shards zeroed

	mu      sync.Mutex
	status  string
	history []jobEvent
	subs    []chan jobEvent

	done chan struct{}
	doc  []byte // set before done closes
}

func newJobState(hash string, spec jobspec.Spec) *jobState {
	js := &jobState{hash: hash, spec: spec, done: make(chan struct{})}
	js.transition(statusQueued, "")
	return js
}

// transition records and broadcasts a lifecycle event.
func (j *jobState) transition(status, detail string) {
	j.mu.Lock()
	j.status = status
	payload := map[string]string{"hash": j.hash, "status": status}
	if detail != "" {
		payload["error"] = detail
	}
	data, _ := json.Marshal(payload)
	ev := jobEvent{Name: status, Data: string(data)}
	j.history = append(j.history, ev)
	subs := append([]chan jobEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // slow subscriber; it still has the done channel
		}
	}
}

// subscribe atomically snapshots the history and registers a live
// channel, so a subscriber sees every event exactly once.
func (j *jobState) subscribe() ([]jobEvent, chan jobEvent) {
	ch := make(chan jobEvent, 8)
	j.mu.Lock()
	history := append([]jobEvent(nil), j.history...)
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return history, ch
}

func (j *jobState) currentStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Server is the bgpsimd job service. Create with New, mount via
// Handler, stop with Drain.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *resultCache
	lim   *limiter

	mu          sync.Mutex
	inflight    map[string]*jobState
	queue       chan *jobState
	draining    bool
	queueClosed bool

	jobWG    sync.WaitGroup // accepted jobs not yet completed
	workerWG sync.WaitGroup

	snapMu    sync.Mutex
	snapshots map[string]*snapshot
	snapSeq   int

	completed atomic.Uint64
	failed    atomic.Uint64
}

// New starts a server's worker pool and returns it. The caller serves
// s.Handler() and calls Drain on shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheEntries),
		inflight:  make(map[string]*jobState),
		queue:     make(chan *jobState, cfg.QueueDepth),
		snapshots: make(map[string]*snapshot),
	}
	if cfg.RatePerSec > 0 {
		s.lim = newLimiter(cfg.RatePerSec, cfg.Burst)
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{hash}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{hash}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/jobs/{hash}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/snapshots", s.handleSnapshotCreate)
	s.mux.HandleFunc("GET /v1/snapshots", s.handleSnapshotList)
	s.mux.HandleFunc("GET /v1/snapshots/{id}", s.handleSnapshotGet)
	s.mux.HandleFunc("POST /v1/snapshots/{id}/resume", s.handleSnapshotResume)
	s.mux.HandleFunc("POST /v1/snapshots/{id}/fork", s.handleSnapshotFork)
	s.mux.HandleFunc("DELETE /v1/snapshots/{id}", s.handleSnapshotDelete)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain performs a graceful shutdown: refuse new submissions, let
// every accepted job run to completion, stop the workers, and finish
// parked snapshots so their simulation goroutines unwind. Returns
// ctx.Err if the context expires first (jobs then keep running; a
// second Drain may be attempted).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	s.mu.Lock()
	if !s.queueClosed {
		close(s.queue)
		s.queueClosed = true
	}
	s.mu.Unlock()
	s.workerWG.Wait()
	s.finishSnapshots()
	return nil
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for js := range s.queue {
		s.runJob(js)
		s.jobWG.Done()
	}
}

// runJob executes a job in identity form and publishes its document.
// Identity form means serial stepwise execution (Shards zeroed), so
// the whole result — stdout, stderr, artifacts — depends only on the
// job's hash, never on this server's execution knobs; that is what
// makes the entire document cacheable.
func (s *Server) runJob(js *jobState) {
	js.transition(statusRunning, "")
	var stdout, stderr bytes.Buffer
	rr, err := jobspec.Run(js.spec, &stdout, &stderr)
	doc := ResultDoc{
		Hash:   js.hash,
		Spec:   js.spec,
		Stdout: stdout.String(),
		Stderr: stderr.String(),
	}
	if rr != nil {
		for _, a := range rr.Artifacts {
			doc.Artifacts = append(doc.Artifacts, ArtifactDoc{Name: a.Name, Data: a.Data})
		}
	}
	detail := ""
	if err != nil {
		doc.Error = err.Error()
		detail = doc.Error
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	b, merr := json.Marshal(doc)
	if merr != nil {
		// Only reachable if an artifact or spec stops being marshalable;
		// publish the failure rather than wedging waiters.
		b, _ = json.Marshal(ResultDoc{Hash: js.hash, Spec: js.spec,
			Error: fmt.Sprintf("server: marshal result: %v", merr)})
	}
	s.publish(js, b)
	js.transition(statusDone, detail)
}

// publish stores the document, wakes waiters, and retires the job from
// the in-flight table (later submissions hit the cache).
func (s *Server) publish(js *jobState, doc []byte) {
	s.cache.Put(js.hash, doc)
	js.mu.Lock()
	js.doc = doc
	js.mu.Unlock()
	close(js.done)
	s.mu.Lock()
	delete(s.inflight, js.hash)
	s.mu.Unlock()
}

// admit registers a job for execution, joining an already-in-flight
// run of the same hash if one exists.
func (s *Server) admit(hash string, spec jobspec.Spec) (js *jobState, joined bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errDraining
	}
	if js, ok := s.inflight[hash]; ok {
		return js, true, nil
	}
	js = newJobState(hash, spec)
	select {
	case s.queue <- js:
	default:
		return nil, false, errQueueFull
	}
	s.jobWG.Add(1)
	s.inflight[hash] = js
	return js, false, nil
}

var (
	errDraining  = fmt.Errorf("server is draining")
	errQueueFull = fmt.Errorf("job queue is full")
)

// handleSubmit accepts a job spec, answers from the cache when the
// job's hash is known, and otherwise queues it. By default the request
// blocks until the result document is ready; ?wait=0 returns 202 with
// the hash for polling. The X-Bgpsimd-Cache header says how the body
// was produced (hit, miss, join) — the body itself is byte-identical
// across all three.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	if s.lim != nil && !s.lim.Allow() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	spec, err := jobspec.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Identity form: the server always runs serially, so results are
	// independent of the client's shard request (output bytes are
	// shard-invariant by the kernel's determinism guarantee, and the
	// serial path additionally never emits shard-fallback notes).
	spec.Shards = 0
	hash := spec.Hash()

	if doc, ok := s.cache.Get(hash); ok {
		writeDoc(w, doc, "hit")
		return
	}
	js, joined, err := s.admit(hash, spec)
	switch err {
	case nil:
	case errDraining:
		httpError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	case errQueueFull:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue is full")
		return
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, map[string]string{"hash": hash, "status": js.currentStatus()})
		return
	}
	select {
	case <-js.done:
	case <-r.Context().Done():
		// Client gave up; the job keeps running and lands in the cache.
		return
	}
	source := "miss"
	if joined {
		source = "join"
	}
	js.mu.Lock()
	doc := js.doc
	js.mu.Unlock()
	writeDoc(w, doc, source)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if doc, ok := s.cache.Get(hash); ok {
		writeDoc(w, doc, "hit")
		return
	}
	s.mu.Lock()
	js := s.inflight[hash]
	s.mu.Unlock()
	if js != nil {
		writeJSON(w, http.StatusAccepted, map[string]string{"hash": hash, "status": js.currentStatus()})
		return
	}
	httpError(w, http.StatusNotFound, "unknown job hash")
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	hash, name := r.PathValue("hash"), r.PathValue("name")
	doc, ok := s.cache.Get(hash)
	if !ok {
		httpError(w, http.StatusNotFound, "no completed result for job hash")
		return
	}
	var rd ResultDoc
	if err := json.Unmarshal(doc, &rd); err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("decode stored result: %v", err))
		return
	}
	for _, a := range rd.Artifacts {
		if a.Name != name {
			continue
		}
		switch name {
		case jobspec.ArtifactTrace:
			w.Header().Set("Content-Type", "application/json")
		case jobspec.ArtifactLinks:
			w.Header().Set("Content-Type", "text/csv")
		default:
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		w.Write(a.Data)
		return
	}
	httpError(w, http.StatusNotFound, fmt.Sprintf("job has no artifact %q", name))
}

// handleEvents streams a job's lifecycle transitions as server-sent
// events, replaying history on connect; the stream closes after the
// done event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	s.mu.Lock()
	js := s.inflight[hash]
	s.mu.Unlock()
	if js == nil {
		// Completed jobs live only in the cache; synthesize the terminal
		// event so late subscribers still learn the outcome.
		if _, ok := s.cache.Get(hash); ok {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-store")
			fmt.Fprintf(w, "event: done\ndata: {\"hash\":%q,\"status\":\"done\"}\n\n", hash)
			flusher.Flush()
			return
		}
		httpError(w, http.StatusNotFound, "unknown job hash")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	history, ch := js.subscribe()
	for _, ev := range history {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
	}
	flusher.Flush()
	for _, ev := range history {
		if ev.Name == statusDone {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
			flusher.Flush()
			if ev.Name == statusDone {
				return
			}
		case <-js.done:
			// Drain any event raced past the channel, then emit done.
			for {
				select {
				case ev := <-ch:
					if ev.Name == statusDone {
						fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
						flusher.Flush()
						return
					}
					fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Name, ev.Data)
				default:
					fmt.Fprintf(w, "event: done\ndata: {\"hash\":%q,\"status\":\"done\"}\n\n", hash)
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.isDraining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// Stats is the /v1/stats document.
type Stats struct {
	Draining  bool       `json:"draining"`
	Jobs      JobStats   `json:"jobs"`
	Cache     CacheStats `json:"cache"`
	Snapshots int        `json:"snapshots"`
}

// JobStats counts job outcomes and current load.
type JobStats struct {
	Inflight  int    `json:"inflight"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// CacheStats reports result-cache effectiveness.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// CurrentStats snapshots the server counters (also served at
// /v1/stats).
func (s *Server) CurrentStats() Stats {
	s.mu.Lock()
	inflight := len(s.inflight)
	draining := s.draining
	s.mu.Unlock()
	s.snapMu.Lock()
	snaps := len(s.snapshots)
	s.snapMu.Unlock()
	hits, misses, evictions := s.cache.Counters()
	return Stats{
		Draining: draining,
		Jobs: JobStats{
			Inflight:  inflight,
			Completed: s.completed.Load(),
			Failed:    s.failed.Load(),
		},
		Cache: CacheStats{
			Entries:   s.cache.Len(),
			Hits:      hits,
			Misses:    misses,
			Evictions: evictions,
		},
		Snapshots: snaps,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.CurrentStats())
}

func writeDoc(w http.ResponseWriter, doc []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Bgpsimd-Cache", source)
	w.Write(doc)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// limiter is a token bucket over the wall clock: sustained rate
// tokens/sec, bucket depth burst.
type limiter struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int) *limiter {
	return &limiter{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// Allow consumes one token if available.
func (l *limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}
