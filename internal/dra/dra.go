// Package dra is a distributed RandomAccess (GUPS) implementation
// running ON the simulator with a real table: every rank generates its
// share of the HPCC-style update stream, routes each update to the
// rank owning the target word via bucketed payload exchanges, and
// applies the XOR locally. Because XOR is commutative and associative,
// the final table must equal a serial replay of all streams — which is
// exactly what the tests check (the same property the HPCC benchmark's
// verification phase exploits).
package dra

import (
	"fmt"

	"bgpsim/internal/core"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
)

// Config describes a distributed RandomAccess run.
type Config struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	LogSize int // global table of 2^LogSize words
	// UpdatesPerRank per rank (default 4 * local table size).
	UpdatesPerRank int
	// Bucket is the per-round lookahead (default 1024, as in HPCC).
	Bucket int
	Seed   uint64
}

// Result reports the run.
type Result struct {
	VirtualSeconds float64
	GUPS           float64
	// Table is the final global table (gathered at rank 0).
	Table []uint64
}

// startValue returns rank r's deterministic stream start.
func startValue(seed uint64, r int) uint64 {
	z := seed + uint64(r)*0x9e3779b97f4a7c15 + 1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// nextRan advances the HPCC polynomial stream.
func nextRan(ran uint64) uint64 {
	return (ran << 1) ^ (uint64(int64(ran)>>63) & 0x7)
}

// Run performs the distributed updates and gathers the final table.
func Run(cfg Config) (*Result, error) {
	if cfg.LogSize < 1 || cfg.Procs <= 0 {
		return nil, fmt.Errorf("dra: bad config %+v", cfg)
	}
	size := 1 << uint(cfg.LogSize)
	p := cfg.Procs
	if size%p != 0 {
		return nil, fmt.Errorf("dra: %d ranks do not divide table of %d words", p, size)
	}
	local := size / p
	updates := cfg.UpdatesPerRank
	if updates == 0 {
		updates = 4 * local
	}
	bucket := cfg.Bucket
	if bucket == 0 {
		bucket = 1024
	}
	mask := uint64(size - 1)

	mcfg := core.PartitionConfig(cfg.Machine, cfg.Mode, p)
	var out Result
	res, err := mpi.Execute(mcfg, func(r *mpi.Rank) {
		me := r.ID()
		table := make([]uint64, local)
		for i := range table {
			table[i] = uint64(me*local + i)
		}
		apply := func(vals []uint64) {
			for _, v := range vals {
				idx := int(v&mask) - me*local
				table[idx] ^= v
			}
			if len(vals) > 0 {
				// Irregular single-word read-modify-writes.
				r.Compute(float64(len(vals)), float64(len(vals)*16), machine.ClassUpdate)
			}
		}

		ran := startValue(cfg.Seed, me)
		remaining := updates
		round := 0
		for remaining > 0 {
			n := bucket
			if n > remaining {
				n = remaining
			}
			remaining -= n
			// Generate a bucket and split it by destination rank.
			buckets := make([][]uint64, p)
			for i := 0; i < n; i++ {
				ran = nextRan(ran)
				dst := int(ran&mask) / local
				buckets[dst] = append(buckets[dst], ran)
			}
			// Exchange buckets (non-blocking sends, then receives).
			tag := 100 + round
			var sends []*mpi.Request
			for q := 0; q < p; q++ {
				if q == me {
					continue
				}
				sends = append(sends, r.IsendPayload(q, len(buckets[q])*16+8, tag, buckets[q]))
			}
			apply(buckets[me])
			for q := 0; q < p; q++ {
				if q == me {
					continue
				}
				_, payload := r.RecvPayload(q, tag)
				apply(payload.([]uint64))
			}
			r.Waitall(sends...)
			round++
		}
		// Everyone finishes their rounds in lockstep (same update
		// count), then the table is gathered for verification.
		r.World().Barrier(r)
		if me != 0 {
			r.SendPayload(0, local*8, 900+me, table)
			return
		}
		full := make([]uint64, size)
		copy(full, table)
		for q := 1; q < p; q++ {
			_, payload := r.RecvPayload(q, 900+q)
			copy(full[q*local:], payload.([]uint64))
		}
		out.Table = full
	})
	if err != nil {
		return nil, err
	}
	out.VirtualSeconds = res.Elapsed.Seconds()
	out.GUPS = float64(updates) * float64(p) / out.VirtualSeconds / 1e9
	return &out, nil
}

// SerialReference replays every rank's stream on a single table — the
// ground truth the distributed run must reproduce.
func SerialReference(cfg Config) []uint64 {
	size := 1 << uint(cfg.LogSize)
	local := size / cfg.Procs
	updates := cfg.UpdatesPerRank
	if updates == 0 {
		updates = 4 * local
	}
	mask := uint64(size - 1)
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	for rank := 0; rank < cfg.Procs; rank++ {
		ran := startValue(cfg.Seed, rank)
		for i := 0; i < updates; i++ {
			ran = nextRan(ran)
			table[ran&mask] ^= ran
		}
	}
	return table
}
