package dra

import (
	"testing"

	"bgpsim/internal/machine"
)

func TestDistributedMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		procs, logSize int
	}{
		{1, 10},
		{2, 10},
		{4, 12},
		{8, 12},
	} {
		cfg := Config{Machine: machine.BGP, Mode: machine.VN,
			Procs: c.procs, LogSize: c.logSize, Seed: 99}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		ref := SerialReference(cfg)
		if len(res.Table) != len(ref) {
			t.Fatalf("%+v: table size %d, want %d", c, len(res.Table), len(ref))
		}
		bad := 0
		for i := range ref {
			if res.Table[i] != ref[i] {
				bad++
			}
		}
		if bad != 0 {
			t.Errorf("%+v: %d of %d table words wrong", c, bad, len(ref))
		}
		if res.GUPS <= 0 {
			t.Errorf("%+v: no GUPS", c)
		}
	}
}

func TestLatencyBound(t *testing.T) {
	// RandomAccess is dominated by small-message exchange: shrinking
	// the bucket (more rounds, same updates) must cost more time.
	big, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN,
		Procs: 4, LogSize: 12, Bucket: 1024, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN,
		Procs: 4, LogSize: 12, Bucket: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if small.VirtualSeconds <= big.VirtualSeconds {
		t.Errorf("bucket=64 (%gs) should be slower than bucket=1024 (%gs)",
			small.VirtualSeconds, big.VirtualSeconds)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 3, LogSize: 10}); err == nil {
		t.Error("3 ranks do not divide 1024 words; expected error")
	}
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 0, LogSize: 10}); err == nil {
		t.Error("zero procs should fail")
	}
}

func TestStreamProperties(t *testing.T) {
	if startValue(1, 0) == startValue(1, 1) {
		t.Error("ranks should get distinct streams")
	}
	if startValue(7, 3) != startValue(7, 3) {
		t.Error("start value not deterministic")
	}
	r := startValue(1, 0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		r = nextRan(r)
		seen[r] = true
	}
	if len(seen) < 990 {
		t.Errorf("stream cycles too quickly: %d distinct of 1000", len(seen))
	}
}
