package stats

import (
	"fmt"
	"math"

	"bgpsim/internal/runner"
)

// Summary is the seeded-sweep statistics of one measured quantity:
// the raw samples (one per seed, in seed order), their mean and sample
// standard deviation, and the half-width of the 95% Student-t
// confidence interval on the mean.
type Summary struct {
	Samples []float64
	Mean    float64
	SD      float64
	Half    float64
}

// CRNSweep reruns a seeded experiment across the given seeds and
// summarizes the results — the common-random-numbers discipline the
// conformance harness uses, generalized: every configuration compared
// against another should be swept with the SAME seed list, so the
// per-seed draws cancel and the confidence interval reflects the
// modeled variability, not the sampling noise of unmatched seeds.
//
// The runs execute concurrently on the runner pool; samples come back
// in seed order, so the summary (and any rendering of it) is
// deterministic at any worker count. The first error aborts the sweep.
func CRNSweep(seeds []uint64, fn func(seed uint64) (float64, error)) (*Summary, error) {
	samples, err := runner.Sweep(seeds, fn)
	if err != nil {
		return nil, err
	}
	return Summarize(samples), nil
}

// Summarize computes the Summary of explicit samples.
func Summarize(samples []float64) *Summary {
	s := &Summary{Samples: append([]float64(nil), samples...)}
	n := len(samples)
	if n == 0 {
		s.Mean = math.NaN()
		s.SD = math.NaN()
		s.Half = math.NaN()
		return s
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	s.Mean = sum / float64(n)
	if n == 1 {
		return s
	}
	ss := 0.0
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.SD = math.Sqrt(ss / float64(n-1))
	s.Half = tCrit95(n-1) * s.SD / math.Sqrt(float64(n))
	return s
}

// CI returns the 95% confidence interval on the mean.
func (s *Summary) CI() (lo, hi float64) {
	return s.Mean - s.Half, s.Mean + s.Half
}

// FormatCI renders the summary as "mean ± half" with FormatG digits —
// the cell format of CI-annotated tables.
func (s *Summary) FormatCI() string {
	return fmt.Sprintf("%s ± %s", FormatG(s.Mean), FormatG(s.Half))
}

// tCrit95 is the two-sided 95% Student-t critical value for the given
// degrees of freedom. Small-sample values are tabulated exactly (CRN
// sweeps typically use a handful of seeds); beyond the table the
// normal limit 1.96 is close enough for reporting purposes.
func tCrit95(df int) float64 {
	table := []float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
		21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
		26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}
