// Package stats holds the result containers the benchmark harness
// emits — tables and figure series — plus text/CSV rendering and small
// numeric helpers.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row. Tables produced
// from a Figure carry an optional Chart: log-scale sparklines of the
// series, one line each.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Chart   string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells; long
// rows panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the Y value at the given X, or NaN when absent.
func (s *Series) YAt(x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Figure is a set of series sharing axes — the harness's analogue of
// one paper figure panel.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, attaches and returns a named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Table renders the figure as a table: the union of X values in
// ascending order, one column per series.
func (f *Figure) Table() *Table {
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sortFloats(xs)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s  [%s]", f.Title, f.YLabel), cols...)
	for _, x := range xs {
		row := []string{FormatG(x)}
		for _, s := range f.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, FormatG(y))
			}
		}
		t.AddRow(row...)
	}
	t.Chart = f.Chart()
	return t
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FormatG formats a float with up to 5 significant digits.
func FormatG(v float64) string {
	return fmt.Sprintf("%.5g", v)
}

// Geomean returns the geometric mean of positive values (NaN for empty
// or non-positive input).
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range vs {
		if v <= 0 {
			return math.NaN()
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// ParallelEfficiency returns the strong-scaling efficiency of a rate
// series measured at increasing process counts: rate(p)/p divided by
// rate(p0)/p0 for the series' first point.
func ParallelEfficiency(s *Series) *Series {
	out := &Series{Name: s.Name + " efficiency"}
	if len(s.X) == 0 {
		return out
	}
	base := s.Y[0] / s.X[0]
	for i := range s.X {
		out.Add(s.X[i], (s.Y[i]/s.X[i])/base)
	}
	return out
}
