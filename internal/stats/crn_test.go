package stats

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	if math.Abs(s.SD-2.1380899) > 1e-6 {
		t.Errorf("SD = %g, want 2.1380899", s.SD)
	}
	// Half-width = t(7) * SD / sqrt(8) with t(7) = 2.365.
	want := 2.365 * s.SD / math.Sqrt(8)
	if math.Abs(s.Half-want) > 1e-12 {
		t.Errorf("Half = %g, want %g", s.Half, want)
	}
	lo, hi := s.CI()
	if lo != s.Mean-s.Half || hi != s.Mean+s.Half {
		t.Errorf("CI() = (%g, %g), want mean ± half", lo, hi)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) || !math.IsNaN(empty.Half) {
		t.Errorf("empty summary = %+v, want NaN mean/half", empty)
	}
	one := Summarize([]float64{3.5})
	if one.Mean != 3.5 || one.SD != 0 || one.Half != 0 {
		t.Errorf("single-sample summary = %+v, want mean only", one)
	}
	// Zero variance ⇒ zero CI width, at any df.
	flat := Summarize([]float64{1.25, 1.25, 1.25, 1.25})
	if flat.SD != 0 || flat.Half != 0 {
		t.Errorf("flat summary = %+v, want zero SD and width", flat)
	}
}

func TestTCrit95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 4: 2.776, 9: 2.262, 30: 2.042, 31: 1.96, 1000: 1.96}
	for df, want := range cases {
		if got := tCrit95(df); got != want {
			t.Errorf("tCrit95(%d) = %g, want %g", df, got, want)
		}
	}
	if !math.IsNaN(tCrit95(0)) {
		t.Error("tCrit95(0) should be NaN")
	}
}

func TestCRNSweep(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	fn := func(seed uint64) (float64, error) { return float64(seed * seed), nil }
	s, err := CRNSweep(seeds, fn)
	if err != nil {
		t.Fatalf("CRNSweep: %v", err)
	}
	if want := []float64{1, 4, 9, 16, 25}; !reflect.DeepEqual(s.Samples, want) {
		t.Errorf("Samples = %v, want %v (seed order)", s.Samples, want)
	}
	if s.Mean != 11 {
		t.Errorf("Mean = %g, want 11", s.Mean)
	}
	// Determinism across repeated runs (worker scheduling must not leak).
	again, err := CRNSweep(seeds, fn)
	if err != nil {
		t.Fatalf("CRNSweep again: %v", err)
	}
	if !reflect.DeepEqual(again, s) {
		t.Errorf("repeated sweep differs: %+v vs %+v", again, s)
	}
}

func TestCRNSweepError(t *testing.T) {
	boom := errors.New("boom")
	_, err := CRNSweep([]uint64{1, 2, 3}, func(seed uint64) (float64, error) {
		if seed == 2 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("CRNSweep error = %v, want %v", err, boom)
	}
}

func TestFormatCI(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if got, want := s.FormatCI(), "12 ± 4.9687"; got != want {
		t.Errorf("FormatCI = %q, want %q", got, want)
	}
}
