package stats

import (
	"fmt"
	"math"
	"strings"
)

// sparkLevels are the eight block characters of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact bar string; the scale is
// linear between the series minimum and maximum. Non-finite values
// render as spaces.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(vs))
	}
	var b strings.Builder
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// LogSparkline renders positive values on a log scale — the right view
// for latency curves spanning orders of magnitude.
func LogSparkline(vs []float64) string {
	logs := make([]float64, len(vs))
	for i, v := range vs {
		if v > 0 {
			logs[i] = math.Log10(v)
		} else {
			logs[i] = math.NaN()
		}
	}
	return Sparkline(logs)
}

// Chart renders the figure's series as labelled log-scale sparklines
// with their ranges — a quick visual of each curve's shape under the
// exact table.
func (f *Figure) Chart() string {
	var b strings.Builder
	width := 0
	for _, s := range f.Series {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range s.Y {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		fmt.Fprintf(&b, "%-*s  %s  [%s .. %s]\n",
			width, s.Name, LogSparkline(s.Y), FormatG(lo), FormatG(hi))
	}
	return b.String()
}
