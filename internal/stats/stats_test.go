package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("longer-name", "22")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "longer-name") {
		t.Errorf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.AddRow("1", "2")
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("bad quoting: %s", csv)
	}
}

func TestSeriesYAt(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.YAt(2) != 20 {
		t.Error("YAt(2) wrong")
	}
	if !math.IsNaN(s.YAt(3)) {
		t.Error("missing X should be NaN")
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("Fig", "procs", "GF/s")
	a := f.AddSeries("BG/P")
	a.Add(1024, 2.0)
	a.Add(4096, 8.0)
	b := f.AddSeries("XT")
	b.Add(4096, 20.0)
	tb := f.Table()
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	// Sorted X, missing cells dashed.
	if tb.Rows[0][0] != "1024" || tb.Rows[0][2] != "-" {
		t.Errorf("row 0 = %v", tb.Rows[0])
	}
	if tb.Rows[1][1] != "8" || tb.Rows[1][2] != "20" {
		t.Errorf("row 1 = %v", tb.Rows[1])
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %g, want 4", g)
	}
	if !math.IsNaN(Geomean(nil)) || !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("invalid input should be NaN")
	}
}

func TestParallelEfficiency(t *testing.T) {
	s := &Series{Name: "hpl"}
	s.Add(100, 100) // rate 1/proc
	s.Add(200, 180) // rate 0.9/proc
	e := ParallelEfficiency(s)
	if e.Y[0] != 1 {
		t.Errorf("base efficiency = %g", e.Y[0])
	}
	if math.Abs(e.Y[1]-0.9) > 1e-12 {
		t.Errorf("efficiency = %g, want 0.9", e.Y[1])
	}
	if len(ParallelEfficiency(&Series{}).X) != 0 {
		t.Error("empty series should stay empty")
	}
}

func TestFormatG(t *testing.T) {
	if FormatG(1234.5678) != "1234.6" {
		t.Errorf("FormatG = %q", FormatG(1234.5678))
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q has wrong length", s)
	}
	r := []rune(s)
	if r[0] != '▁' || r[3] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	if Sparkline([]float64{5, 5}) != "▁▁" {
		t.Errorf("flat series should be all-low: %q", Sparkline([]float64{5, 5}))
	}
	if Sparkline([]float64{math.NaN()}) != " " {
		t.Error("NaN should render as space")
	}
}

func TestLogSparkline(t *testing.T) {
	// Decades should step evenly on the log scale.
	s := []rune(LogSparkline([]float64{1, 10, 100, 1000}))
	if s[0] != '▁' || s[3] != '█' {
		t.Errorf("log sparkline wrong: %q", string(s))
	}
	if LogSparkline([]float64{-1, 0})[0] != ' ' {
		t.Error("non-positive values should be blank on log scale")
	}
}

func TestFigureChart(t *testing.T) {
	f := NewFigure("f", "x", "y")
	a := f.AddSeries("curve")
	a.Add(1, 10)
	a.Add(2, 1000)
	out := f.Chart()
	if !strings.Contains(out, "curve") || !strings.Contains(out, "[10 .. 1000]") {
		t.Errorf("chart output: %q", out)
	}
}
