package bgpsim

import (
	"bgpsim/internal/fault"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/trace"
)

// Observability and fault types re-exported from the internal layers,
// so programs never import bgpsim/internal/... directly.
type (
	// TraceBuffer is a bounded in-memory event trace (Config.Trace).
	TraceBuffer = trace.Buffer
	// TraceEvent is one recorded trace event.
	TraceEvent = trace.Event
	// TraceKind is the kind of a trace event (Send, Match, ...).
	TraceKind = trace.Kind
	// Probe receives the observability event stream of a run
	// (Config.Probe). Recorder is the standard implementation.
	Probe = obs.Probe
	// Recorder accumulates the probe stream into timelines, link
	// telemetry and critical-path inputs.
	Recorder = obs.Recorder
	// Profile is a run's per-rank time decomposition.
	Profile = obs.Profile
	// RankProfile is one rank's time decomposition.
	RankProfile = obs.RankProfile
	// CritPath is the result of a critical-path walk.
	CritPath = obs.CritPath
	// Segment is one span of a rank's recorded timeline.
	Segment = obs.Segment
	// SegKind classifies a timeline segment (compute, p2p wait, ...).
	SegKind = obs.SegKind
	// CollSpan is one collective operation on a rank's timeline.
	CollSpan = obs.CollSpan
	// FaultPlan is a deterministic fault schedule (Config.Faults).
	FaultPlan = fault.Plan
	// NetStats holds a run's interconnect traffic counters.
	NetStats = network.Stats
	// Fidelity selects the torus network model.
	Fidelity = network.Fidelity
)

// Trace event kinds.
const (
	TraceSend      = trace.Send
	TraceRecvPost  = trace.RecvPost
	TraceMatch     = trace.Match
	TraceCollEnter = trace.CollEnter
	TraceCollExit  = trace.CollExit
)

// Timeline segment kinds.
const (
	SegCompute  = obs.SegCompute
	SegP2PWait  = obs.SegP2PWait
	SegCollWait = obs.SegCollWait
)

// Packet is the highest-fidelity torus model (per-packet simulation);
// it completes the Analytic and Contention constants in bgpsim.go.
const Packet = network.Packet

// NewTraceBuffer returns a trace buffer holding up to max events;
// beyond that, events are counted as dropped, not recorded (see
// Result.DroppedEvents).
func NewTraceBuffer(max int) *TraceBuffer { return trace.NewBuffer(max) }

// NewRecorder returns a Recorder with default settings. Attach it with
// WithProfile (or Config.Probe) and read it back from
// Result.Recorder, Result.Profile, or Result.CriticalPath.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NewRecorderWith returns a Recorder with an explicit link-telemetry
// bucket width and timeline-segment cap (zero values mean the
// defaults: DefaultBucket, unbounded).
func NewRecorderWith(bucket Duration, maxSegs int) *Recorder {
	return obs.NewRecorderWith(bucket, maxSegs)
}

// NewFaultPlan returns an empty deterministic fault plan seeded with
// seed. Attach it with WithFaults (or Config.Faults).
func NewFaultPlan(seed uint64) *FaultPlan { return fault.NewPlan(seed) }

// Option adjusts a Config built by NewSystem. Every option is plain
// sugar over a public Config field — WithTrace(b) is exactly
// cfg.Trace = b — so option-built and field-poked configurations are
// interchangeable, and NewSystem with no options returns the same
// Config it always has.
type Option func(*Config)

// WithTrace records message and collective events into buf.
// Equivalent to setting Config.Trace = buf.
func WithTrace(buf *TraceBuffer) Option {
	return func(c *Config) { c.Trace = buf }
}

// WithProfile streams the run's observability events into rec,
// enabling Result.Profile and Result.CriticalPath. Equivalent to
// setting Config.Probe = rec.
func WithProfile(rec *Recorder) Option {
	return func(c *Config) { c.Probe = rec }
}

// WithProbe attaches an arbitrary probe implementation. Equivalent to
// setting Config.Probe = p.
func WithProbe(p Probe) Option {
	return func(c *Config) { c.Probe = p }
}

// WithColl overrides the collective-algorithm selection for one op,
// e.g. WithColl("allreduce", "ring"). Equivalent to setting
// Config.Coll[op] = algo; repeat the option for several ops. Invalid
// names are rejected when the run starts.
func WithColl(op, algo string) Option {
	return func(c *Config) {
		if c.Coll == nil {
			c.Coll = make(map[string]string)
		}
		c.Coll[op] = algo
	}
}

// WithFaults injects the plan's faults into the run. Equivalent to
// setting Config.Faults = p.
func WithFaults(p *FaultPlan) Option {
	return func(c *Config) { c.Faults = p }
}

// WithFidelity selects the torus network model (Analytic, Contention,
// or Packet). Equivalent to setting Config.Fidelity = f.
func WithFidelity(f Fidelity) Option {
	return func(c *Config) { c.Fidelity = f }
}

// WithMapping selects the process-to-processor mapping. Equivalent to
// setting Config.Mapping = m.
func WithMapping(m Mapping) Option {
	return func(c *Config) { c.Mapping = m }
}

// WithPartition runs the program on a sub-machine view instead of the
// whole configured machine: ranks land on the partition's nodes, and a
// scattered (non-isolated) partition pays the external-route bandwidth
// derate. Equivalent to setting Config.Partition = p. The partition's
// size must cover the configured rank count's node demand.
func WithPartition(p *Partition) Option {
	return func(c *Config) { c.Partition = p }
}
